"""Named dataset configurations mirroring Table 2 of the paper.

The paper evaluates six datasets: simple/medium/complex *contract*
databases (3000/1000/1000 specifications of 5/6/7 patterns each) and
simple/medium/complex *query* workloads (100 specifications of 1/2/3
patterns), all over a 20-event vocabulary.

Two configuration families are provided:

* :data:`PAPER_DATASETS` — the paper's exact parameters; suitable for
  regenerating Table 2's statistics, but a full Figure-5 sweep at these
  sizes takes hours in pure Python (as it did on the paper's Java
  prototype);
* :data:`SCALED_DATASETS` — the default for the benchmark harness:
  smaller vocabulary, pattern counts and database sizes chosen so the
  whole suite runs in minutes while preserving the relative complexity
  ordering (simple < medium < complex) and therefore the shape of the
  paper's results.  EXPERIMENTS.md documents the substitution.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from ..automata.ltl2ba import translate
from ..ltl.ast import conj
from .generator import GeneratedSpec, WorkloadGenerator


@dataclass(frozen=True)
class DatasetConfig:
    """Parameters of one generated dataset (a Table 2 row).

    ``max_transitions`` optionally rejects pathologically large BAs at
    generation time; the scaled benchmark configurations use it to tame
    the heavy tail of random conjunctions (the paper's Table 2 shows
    transition-count standard deviations exceeding the means), which
    would otherwise dominate run-to-run timing variance.
    """

    name: str
    size: int
    patterns: int
    vocabulary_size: int
    seed: int
    max_transitions: int | None = None

    def generate(self, size: int | None = None) -> list[GeneratedSpec]:
        """Generate the dataset (optionally overriding its size, e.g. for
        the Figure 5 database-size sweep)."""
        generator = WorkloadGenerator(
            vocabulary_size=self.vocabulary_size,
            seed=self.seed,
            max_transitions=self.max_transitions,
        )
        return generator.generate_specs(size or self.size, self.patterns)


#: The paper's exact dataset parameters (Table 2).
PAPER_DATASETS: dict[str, DatasetConfig] = {
    "simple_contracts": DatasetConfig("Simple contracts", 3000, 5, 20, 101),
    "medium_contracts": DatasetConfig("Medium contracts", 1000, 6, 20, 102),
    "complex_contracts": DatasetConfig("Complex contracts", 1000, 7, 20, 103),
    "simple_queries": DatasetConfig("Simple queries", 100, 1, 20, 201),
    "medium_queries": DatasetConfig("Medium queries", 100, 2, 20, 202),
    "complex_queries": DatasetConfig("Complex queries", 100, 3, 20, 203),
}

#: Scaled-down defaults for the pure-Python benchmark harness.  Contract
#: datasets cap BA size to tame the heavy tail of random conjunctions
#: (see :class:`DatasetConfig`); query workloads are left uncapped.
SCALED_DATASETS: dict[str, DatasetConfig] = {
    "simple_contracts": DatasetConfig(
        "Simple contracts", 400, 3, 12, 101, max_transitions=600),
    "medium_contracts": DatasetConfig(
        "Medium contracts", 150, 4, 12, 102, max_transitions=900),
    "complex_contracts": DatasetConfig(
        "Complex contracts", 150, 5, 12, 103, max_transitions=1200),
    "simple_queries": DatasetConfig("Simple queries", 12, 1, 12, 201),
    "medium_queries": DatasetConfig("Medium queries", 12, 2, 12, 202),
    "complex_queries": DatasetConfig("Complex queries", 12, 3, 12, 203),
}


@dataclass(frozen=True)
class DatasetStatistics:
    """One row of Table 2: dataset name, size, pattern count, and the
    state/transition statistics of the translated BAs."""

    name: str
    size: int
    patterns: int
    states_avg: float
    states_stddev: float
    transitions_avg: float
    transitions_stddev: float

    def row(self) -> tuple:
        return (
            self.name,
            self.size,
            self.patterns,
            round(self.states_avg, 2),
            round(self.states_stddev, 2),
            round(self.transitions_avg, 2),
            round(self.transitions_stddev, 2),
        )


def dataset_statistics(
    config: DatasetConfig, sample_size: int | None = None
) -> DatasetStatistics:
    """Translate (a sample of) the dataset and compute its Table 2 row.

    ``sample_size`` caps how many specifications are translated; the
    statistics are then estimates of the full dataset's row.
    """
    size = min(config.size, sample_size) if sample_size else config.size
    specs = config.generate(size)
    states: list[int] = []
    transitions: list[int] = []
    for spec in specs:
        ba = translate(conj(spec.clauses))
        states.append(ba.num_states)
        transitions.append(ba.num_transitions)
    return DatasetStatistics(
        name=config.name,
        size=size,
        patterns=config.patterns,
        states_avg=statistics.mean(states),
        states_stddev=statistics.pstdev(states),
        transitions_avg=statistics.mean(transitions),
        transitions_stddev=statistics.pstdev(transitions),
    )
