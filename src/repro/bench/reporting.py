"""Plain-text rendering of benchmark results.

The harness prints the same rows/series the paper reports — Table 2's
dataset statistics, Figure 5's per-database-size averages, Figure 6's
complexity grid — as monospace tables, and writes them to result files
that EXPERIMENTS.md references.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table."""
    rendered_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    for row in rendered_rows:
        out.append(line(row))
    return "\n".join(out)


def format_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 50,
    unit: str = "x",
) -> str:
    """A quick ASCII bar chart (used for the speedup figures)."""
    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    peak = max(values) if values else 1.0
    label_width = max((len(l) for l in labels), default=0)
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / peak))) if peak > 0 else ""
        out.append(f"{label.ljust(label_width)}  {bar} {value:.1f}{unit}")
    return "\n".join(out)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def write_report(path: str | Path, text: str) -> Path:
    """Write a report file, creating parent directories; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text + "\n", encoding="utf-8")
    return path
