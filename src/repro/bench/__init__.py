"""Benchmark harness: experiment runners and report rendering for every
table and figure of the paper's evaluation (§7)."""

from .harness import (
    GridCell,
    IndexBuildReport,
    QueryEvaluation,
    SweepPoint,
    build_database,
    evaluate_query,
    extend_database,
    index_build_report,
    run_figure5,
    run_figure6,
    run_queries,
    specs_to_formulas,
)
from .reporting import format_bar_chart, format_table, write_report

__all__ = [
    "GridCell",
    "IndexBuildReport",
    "QueryEvaluation",
    "SweepPoint",
    "build_database",
    "evaluate_query",
    "extend_database",
    "index_build_report",
    "run_figure5",
    "run_figure6",
    "run_queries",
    "specs_to_formulas",
    "format_bar_chart",
    "format_table",
    "write_report",
]
