"""Experiment runners regenerating the paper's evaluation (§7.3–§7.4).

Each function builds the synthetic databases/workloads of §7.2 and
measures optimized versus unoptimized query evaluation, producing the
data behind:

* **Figure 5** (:func:`run_figure5`) — average speedup and running times
  (scan vs. optimized) across database sizes, simple contracts, all
  query complexities mixed;
* **Figure 6** (:func:`run_figure6`) — average speedup per contract
  complexity × query complexity at a fixed database size;
* **index building** (:func:`index_build_report`) — prefilter build
  time/size and projection precomputation time/storage (§7.4).

The *scan* (unoptimized) evaluation is the architecture of §3: translate
the query and run the permission algorithm against every contract BA.
The *optimized* evaluation uses both §4 and §5.  Both include the query
LTL-to-BA conversion time, exactly as the paper's measurements do.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Sequence

from ..broker.database import BrokerConfig, ContractDatabase
from ..broker.options import QueryOptions
from ..ltl.ast import Formula, conj
from ..workload.datasets import DatasetConfig
from ..workload.generator import GeneratedSpec


@dataclass
class QueryEvaluation:
    """One query evaluated in one mode."""

    seconds: float
    permitted: int
    candidates: int
    checked: int


@dataclass
class SweepPoint:
    """One Figure 5 data point (one database size)."""

    database_size: int
    scan_avg_seconds: float
    optimized_avg_seconds: float
    speedup_avg: float
    speedup_stddev: float
    speedup_min: float
    speedup_max: float

    @property
    def aggregate_speedup(self) -> float:
        """Ratio of total scan time to total optimized time — more robust
        to per-query timing noise than the mean of per-query ratios."""
        return self.scan_avg_seconds / max(self.optimized_avg_seconds, 1e-9)

    def row(self) -> tuple:
        return (
            self.database_size,
            round(self.scan_avg_seconds * 1000, 1),
            round(self.optimized_avg_seconds * 1000, 1),
            round(self.speedup_avg, 1),
            round(self.speedup_stddev, 1),
            round(self.speedup_min, 1),
            round(self.speedup_max, 1),
            round(self.aggregate_speedup, 1),
        )


@dataclass
class GridCell:
    """One Figure 6 cell (contract complexity × query complexity)."""

    contract_dataset: str
    query_dataset: str
    speedup_avg: float
    speedup_stddev: float
    scan_avg_seconds: float
    optimized_avg_seconds: float

    def row(self) -> tuple:
        return (
            self.contract_dataset,
            self.query_dataset,
            round(self.speedup_avg, 1),
            round(self.speedup_stddev, 1),
            round(self.scan_avg_seconds * 1000, 1),
            round(self.optimized_avg_seconds * 1000, 1),
        )


def specs_to_formulas(specs: Sequence[GeneratedSpec]) -> list[Formula]:
    """Each spec's clause conjunction (the query form)."""
    return [conj(spec.clauses) for spec in specs]


def build_database(
    specs: Sequence[GeneratedSpec],
    config: BrokerConfig | None = None,
    name_prefix: str = "contract",
) -> ContractDatabase:
    """Register every generated spec into a fresh database."""
    db = ContractDatabase(config or BrokerConfig())
    for i, spec in enumerate(specs):
        db.register(f"{name_prefix}-{i}", list(spec.clauses))
    return db


def extend_database(
    db: ContractDatabase,
    specs: Sequence[GeneratedSpec],
    name_prefix: str = "contract",
) -> None:
    """Register additional specs (used by the incremental size sweep)."""
    base = len(db)
    for i, spec in enumerate(specs):
        db.register(f"{name_prefix}-{base + i}", list(spec.clauses))


def evaluate_query(
    db: ContractDatabase, query: Formula, optimized: bool
) -> QueryEvaluation:
    """Time one query in one mode (timings come from the broker's own
    per-phase clock, which includes query translation)."""
    result = db.query(
        query,
        QueryOptions(use_prefilter=optimized, use_projections=optimized),
    )
    return QueryEvaluation(
        seconds=result.stats.total_seconds,
        permitted=result.stats.permitted,
        candidates=result.stats.candidates,
        checked=result.stats.checked,
    )


def _speedups(
    scans: Sequence[QueryEvaluation], optimizeds: Sequence[QueryEvaluation]
) -> list[float]:
    """Per-query speedups, guarding against sub-clock-resolution times."""
    floor = 1e-6
    return [
        max(s.seconds, floor) / max(o.seconds, floor)
        for s, o in zip(scans, optimizeds)
    ]


def run_queries(
    db: ContractDatabase, queries: Sequence[Formula], warmup: bool = True
) -> tuple[list[QueryEvaluation], list[QueryEvaluation]]:
    """Every query in both modes; returns (scan, optimized) lists and
    asserts both modes agreed on every result set size.

    With ``warmup`` (the default) an untimed optimized pass runs first so
    the lazily materialized projection quotients are built before the
    clock starts — the paper precomputes its simplified BAs entirely at
    registration time, so steady-state is the comparable regime.
    """
    if warmup:
        for q in queries:
            evaluate_query(db, q, optimized=True)
    scan = [evaluate_query(db, q, optimized=False) for q in queries]
    optimized = [evaluate_query(db, q, optimized=True) for q in queries]
    for i, (s, o) in enumerate(zip(scan, optimized)):
        if s.permitted != o.permitted:
            raise AssertionError(
                f"optimization changed query {i} result: "
                f"scan={s.permitted} optimized={o.permitted}"
            )
    return scan, optimized


def run_figure5(
    contract_config: DatasetConfig,
    query_configs: Sequence[DatasetConfig],
    database_sizes: Sequence[int],
    broker_config: BrokerConfig | None = None,
) -> list[SweepPoint]:
    """The Figure 5 sweep: growing databases of simple contracts,
    queries of every complexity, scan vs. optimized.

    Contracts are registered incrementally, so a sweep over sizes
    ``[100, 500, 1000]`` translates each contract exactly once.
    """
    sizes = sorted(database_sizes)
    all_specs = contract_config.generate(sizes[-1])
    queries: list[Formula] = []
    for qc in query_configs:
        queries.extend(specs_to_formulas(qc.generate()))

    db = ContractDatabase(broker_config or BrokerConfig())
    points: list[SweepPoint] = []
    registered = 0
    for size in sizes:
        extend_database(db, all_specs[registered:size])
        registered = size
        scan, optimized = run_queries(db, queries)
        speedups = _speedups(scan, optimized)
        points.append(
            SweepPoint(
                database_size=size,
                scan_avg_seconds=statistics.mean(e.seconds for e in scan),
                optimized_avg_seconds=statistics.mean(
                    e.seconds for e in optimized
                ),
                speedup_avg=statistics.mean(speedups),
                speedup_stddev=statistics.pstdev(speedups),
                speedup_min=min(speedups),
                speedup_max=max(speedups),
            )
        )
    return points


def run_figure6(
    contract_configs: Sequence[DatasetConfig],
    query_configs: Sequence[DatasetConfig],
    database_size: int | None = None,
    broker_config: BrokerConfig | None = None,
) -> list[GridCell]:
    """The Figure 6 grid: speedup per contract complexity × query
    complexity at one database size."""
    cells: list[GridCell] = []
    for contract_config in contract_configs:
        specs = contract_config.generate(database_size)
        db = build_database(specs, broker_config)
        for query_config in query_configs:
            queries = specs_to_formulas(query_config.generate())
            scan, optimized = run_queries(db, queries)
            speedups = _speedups(scan, optimized)
            cells.append(
                GridCell(
                    contract_dataset=contract_config.name,
                    query_dataset=query_config.name,
                    speedup_avg=statistics.mean(speedups),
                    speedup_stddev=statistics.pstdev(speedups),
                    scan_avg_seconds=statistics.mean(e.seconds for e in scan),
                    optimized_avg_seconds=statistics.mean(
                        e.seconds for e in optimized
                    ),
                )
            )
    return cells


@dataclass
class IndexBuildReport:
    """The §7.4 'index building and size' numbers."""

    contracts: int
    prefilter_build_seconds: float
    prefilter_avg_insert_seconds: float
    prefilter_nodes: int
    prefilter_size_entries: int
    projection_build_seconds: float
    projection_avg_insert_seconds: float
    projection_storage_entries: int
    projection_distinct_ratio: float
    database_storage_entries: int

    def rows(self) -> list[tuple]:
        return [
            ("contracts", self.contracts),
            ("prefilter build (s)", round(self.prefilter_build_seconds, 3)),
            ("prefilter avg insert (ms)",
             round(self.prefilter_avg_insert_seconds * 1000, 2)),
            ("prefilter nodes", self.prefilter_nodes),
            ("prefilter size (entries)", self.prefilter_size_entries),
            ("projection build (s)", round(self.projection_build_seconds, 3)),
            ("projection avg insert (ms)",
             round(self.projection_avg_insert_seconds * 1000, 2)),
            ("projection storage (entries)", self.projection_storage_entries),
            ("projection distinct partitions (ratio)",
             round(self.projection_distinct_ratio, 3)),
            ("contract BA storage (entries)", self.database_storage_entries),
        ]


def workload_metrics_rows(db: ContractDatabase) -> list[tuple]:
    """Cache and pruning aggregates of everything ``db`` served so far,
    as (metric, value) rows for :func:`repro.bench.reporting.format_table`.

    The database feeds every query's stats into its metrics registry, so
    any harness run (Figure 5/6 sweeps, ablations, workload replays) can
    append this to its report without extra bookkeeping.
    """
    cache = db.cache_stats()
    snapshot = db.metrics.snapshot()
    counters = snapshot["counters"]
    histograms = snapshot["histograms"]
    rows: list[tuple] = [
        ("queries served", counters.get("query.count", 0)),
        ("cache hit rate", f"{cache.hit_rate:.0%}"),
        ("cache hits / misses / evictions",
         f"{cache.hits} / {cache.misses} / {cache.evictions}"),
        ("cache entries", f"{cache.size} of {cache.capacity}"),
        ("permission checks", counters.get("query.permission_checks", 0)),
        ("contracts returned", counters.get("query.permitted", 0)),
    ]
    for name, label in (
        ("query.translation_seconds", "translation (ms)"),
        ("query.prefilter_seconds", "prefilter (ms)"),
        ("query.permission_seconds", "permission (ms)"),
        ("query.total_seconds", "total (ms)"),
    ):
        h = histograms.get(name)
        if h and h["count"]:
            rows.append((
                f"{label} mean / p50 / p99",
                f"{h['mean'] * 1000:.2f} / {h['p50'] * 1000:.2f} / "
                f"{h['p99'] * 1000:.2f}",
            ))
    ratio = histograms.get("query.pruning_ratio")
    if ratio and ratio["count"]:
        rows.append((
            "pruning ratio mean / p50",
            f"{ratio['mean']:.2f} / {ratio['p50']:.2f}",
        ))
    candidates = histograms.get("query.candidates")
    if candidates and candidates["count"]:
        rows.append((
            "candidates mean / max",
            f"{candidates['mean']:.1f} / {candidates['max']:.0f}",
        ))
    return rows


def workload_metrics_table(db: ContractDatabase, title: str = "") -> str:
    """The metrics rows rendered as a report table."""
    from .reporting import format_table

    return format_table(
        ["metric", "value"],
        workload_metrics_rows(db),
        title=title or "Workload metrics (cache + pruning aggregates)",
    )


def index_build_report(db: ContractDatabase) -> IndexBuildReport:
    """Summarize a built database's registration-side costs and sizes."""
    stats = db.registration_stats
    contracts = max(stats.contracts, 1)
    projection_storage = 0
    subsets = 0
    distinct = 0
    for contract in db.contracts():
        if contract.projections is not None:
            projection_storage += contract.projections.storage_estimate()
            subsets += contract.projections.num_subsets
            distinct += contract.projections.num_distinct_partitions
    database_storage = sum(
        c.ba.num_states + 3 * c.ba.num_transitions for c in db.contracts()
    )
    return IndexBuildReport(
        contracts=stats.contracts,
        prefilter_build_seconds=stats.prefilter_seconds,
        prefilter_avg_insert_seconds=stats.prefilter_seconds / contracts,
        prefilter_nodes=db.index.num_nodes,
        prefilter_size_entries=db.index.size_estimate(),
        projection_build_seconds=stats.projection_seconds,
        projection_avg_insert_seconds=stats.projection_seconds / contracts,
        projection_storage_entries=projection_storage,
        projection_distinct_ratio=(distinct / subsets) if subsets else 0.0,
        database_storage_entries=database_storage,
    )
