"""Command-line interface to the contract broker.

Mirrors the paper's prototype architecture (§7.1) of four independent
modules exchanging text files:

* ``contract-broker generate``  — the data generator (§7.2): writes a
  JSON file of contract (or query) specifications;
* ``contract-broker stats``     — dataset statistics (Table 2 rows);
* ``contract-broker translate`` — LTL → Büchi automaton, printed or
  saved as JSON (the registration step's conversion);
* ``contract-broker build``     — register a spec file and persist the
  database directory (contracts + derived artifacts);
* ``contract-broker save``      — like ``build``, and also accepts an
  existing database directory as input (re-snapshot);
* ``contract-broker load``      — load a snapshot and report what was
  restored versus rebuilt (the crash-recovery / cold-start check);
* ``contract-broker query``     — the runtime module: loads a spec file
  or a built database and evaluates one or more queries (``--query``
  LTL text or ``--spec`` declarative JSON/YAML query-spec files),
  reporting per-phase statistics;
* ``contract-broker explain``   — the cost-based planner's chosen plan
  for one query: per-stage cost estimates, and (unless ``--no-run``)
  the actual stage counts observed when the query runs;
* ``contract-broker monitor``   — the streaming module: replays a JSONL
  event log (or stdin) through the encoded fleet monitor, printing an
  alert whenever a contract is violated or a watch query stops being
  satisfiable;
* ``contract-broker compare``   — behavioral diff of two contracts,
  with witness sequences;
* ``contract-broker metrics``   — run a query workload (optionally
  repeated and in parallel) and print the broker's aggregate metrics:
  compilation-cache hit rate, per-stage latency histograms, pruning
  distributions;
* ``contract-broker serve``     — the distributed deployment: N shard
  servers on loopback sockets (threads or processes), optionally
  seeded from a spec file, with the address list written to a port
  file other commands and clients can pick up;
* ``contract-broker shard-status`` — interrogate running shard servers
  over the wire protocol: contracts held, journal epoch/size, op
  counters; a dead shard is reported ``down`` (exit 0 — a finding,
  not a CLI failure), and ``--health`` prints the compact up/down
  summary;
* ``contract-broker promote``   — turn a caught-up journal-shipping
  replica of a dead leader into a fresh writable leader directory
  (epoch bump) a shard server can serve;
* ``contract-broker demo``      — the airfare running example end to end.

Spec-file format: a JSON list of ``{"name": ..., "clauses": [LTL, ...],
"attributes": {...}}`` objects.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .automata.ltl2ba import translate
from .automata.serialize import automaton_to_dict
from .broker.database import BrokerConfig, ContractDatabase
from .broker.options import QueryOptions
from .errors import ReproError
from .ltl.parser import parse
from .ltl.printer import format_formula
from .workload.generator import WorkloadGenerator, pathological_specs


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="contract-broker",
        description="Query contract databases by temporal behavior "
        "(SIGMOD 2011 reproduction).",
    )
    sub = parser.add_subparsers(required=True)

    gen = sub.add_parser("generate", help="generate a synthetic spec file")
    gen.add_argument("--count", type=int, default=100)
    gen.add_argument("--patterns", type=int, default=3,
                     help="clauses per specification")
    gen.add_argument("--vocabulary", type=int, default=12)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--profile", choices=["patterns", "pathological"],
                     default="patterns",
                     help="'patterns' is the §7.2 survey-driven workload; "
                          "'pathological' is the adversarial "
                          "eventuality-conjunction workload for "
                          "budget/timeout testing")
    gen.add_argument("--out", type=Path, required=True)
    gen.set_defaults(handler=_cmd_generate)

    stats = sub.add_parser("stats", help="Table-2 statistics of a spec file")
    stats.add_argument("specs", type=Path)
    stats.set_defaults(handler=_cmd_stats)

    trans = sub.add_parser("translate", help="LTL to Büchi automaton")
    trans.add_argument("formula", help="LTL formula text")
    trans.add_argument("--json", action="store_true",
                       help="emit the automaton as JSON")
    trans.add_argument("--dot", action="store_true",
                       help="emit the automaton in Graphviz DOT")
    trans.set_defaults(handler=_cmd_translate)

    build = sub.add_parser(
        "build", help="register a spec file and save the database"
    )
    build.add_argument("specs", type=Path)
    build.add_argument("--out", type=Path, required=True,
                       help="database directory to create")
    build.add_argument("--index-depth", type=int, default=2)
    build.add_argument("--projection-cap", type=int, default=2)
    build.set_defaults(handler=_cmd_build)

    save = sub.add_parser(
        "save",
        help="build (or reload) a database and write a v2 snapshot "
             "with all derived artifacts",
    )
    save.add_argument("specs", type=Path,
                      help="spec file or existing database directory")
    save.add_argument("--out", type=Path, required=True,
                      help="snapshot directory to write")
    save.add_argument("--index-depth", type=int, default=2)
    save.add_argument("--projection-cap", type=int, default=2)
    save.set_defaults(handler=_cmd_save)

    load = sub.add_parser(
        "load",
        help="load a snapshot directory and print the restore report "
             "(what was restored vs rebuilt)",
    )
    load.add_argument("directory", type=Path)
    load.add_argument("--stats", action="store_true",
                      help="also print database statistics")
    load.set_defaults(handler=_cmd_load)

    query = sub.add_parser(
        "query",
        help="evaluate queries over a spec file or a built database "
             "directory",
    )
    query.add_argument("specs", type=Path)
    query.add_argument("--query", action="append", default=[],
                       dest="queries", help="LTL query (repeatable)")
    query.add_argument("--spec", action="append", default=[], type=Path,
                       dest="spec_files",
                       help="declarative query-spec file, JSON or YAML "
                            "(repeatable); carries its own filter and "
                            "options")
    query.add_argument("--planner", action="store_true",
                       help="let the cost-based planner pick the "
                            "pipeline for --query texts")
    query.add_argument("--no-prefilter", action="store_true")
    query.add_argument("--no-projections", action="store_true")
    query.add_argument("--index-depth", type=int, default=2)
    query.add_argument("--projection-cap", type=int, default=2)
    _add_budget_flags(query)
    query.set_defaults(handler=_cmd_query)

    explain = sub.add_parser(
        "explain",
        help="show the cost-based plan for one query — per-stage cost "
             "estimates plus the stage counts actually observed",
    )
    explain.add_argument("specs", type=Path,
                         help="spec file or built database directory")
    explain.add_argument("--query", default=None, help="LTL query text")
    explain.add_argument("--spec", type=Path, default=None,
                         dest="spec_file",
                         help="declarative query-spec file (JSON/YAML)")
    explain.add_argument("--no-run", action="store_true",
                         help="plan only; skip executing the query")
    explain.add_argument("--json", action="store_true",
                         help="emit the plan (and actuals) as JSON")
    explain.set_defaults(handler=_cmd_explain)

    mon = sub.add_parser(
        "monitor",
        help="replay a JSONL event log (or stream stdin) through the "
             "fleet monitor and print alerts",
    )
    mon.add_argument("specs", type=Path,
                     help="spec file or built database directory")
    mon.add_argument("--events", type=Path, default=None,
                     help="JSONL event log, one "
                          '{"events": [...], "contract": name-or-null} '
                          "record per line ('-' or omitted = stdin)")
    mon.add_argument("--watch", action="append", default=[],
                     dest="watches",
                     help="fleet-wide watch query, 'name=LTL' or bare "
                          "LTL (repeatable)")
    mon.add_argument("--strict-vocabulary", action="store_true",
                     help="reject snapshots citing events outside a "
                          "contract's vocabulary instead of counting "
                          "them")
    mon.add_argument("--json", action="store_true",
                     help="emit alerts and the final summary as JSON")
    mon.set_defaults(handler=_cmd_monitor)

    met = sub.add_parser(
        "metrics",
        help="run a query workload and print aggregate broker metrics",
    )
    met.add_argument("specs", type=Path,
                     help="spec file or built database directory")
    met.add_argument("--query", action="append", required=True,
                     dest="queries", help="LTL query (repeatable)")
    met.add_argument("--repeat", type=int, default=1,
                     help="run the workload this many times "
                          "(repeats hit the compilation cache)")
    met.add_argument("--workers", type=int, default=1,
                     help="thread-pool width for permission checks")
    met.add_argument("--no-prefilter", action="store_true")
    met.add_argument("--no-projections", action="store_true")
    met.add_argument("--index-depth", type=int, default=2)
    met.add_argument("--projection-cap", type=int, default=2)
    met.add_argument("--cache-capacity", type=int, default=None,
                     help="compilation-cache capacity (0 disables)")
    met.add_argument("--json", action="store_true",
                     help="emit the metrics snapshot as JSON")
    _add_budget_flags(met)
    met.set_defaults(handler=_cmd_metrics)

    comp = sub.add_parser(
        "compare",
        help="compare two contracts' temporal behavior by name",
    )
    comp.add_argument("specs", type=Path,
                      help="spec file or built database directory")
    comp.add_argument("left", help="name of the first contract")
    comp.add_argument("right", help="name of the second contract")
    comp.add_argument("--limit", type=int, default=64,
                      help="behavior-enumeration bound")
    comp.set_defaults(handler=_cmd_compare)

    serve = sub.add_parser(
        "serve",
        help="run a sharded broker cluster on loopback sockets "
             "(journal-backed when --directory is given)",
    )
    serve.add_argument("--shards", type=int, default=3,
                       help="number of shard servers")
    serve.add_argument("--directory", type=Path, default=None,
                       help="root directory; each shard journals under "
                            "shard-N/ (omit for memory-only shards)")
    serve.add_argument("--specs", type=Path, default=None,
                       help="spec file to register across the shards at "
                            "startup")
    serve.add_argument("--mode", choices=["thread", "process"],
                       default="thread",
                       help="shard isolation: in-process threads or "
                            "spawned processes")
    serve.add_argument("--port-file", type=Path, default=None,
                       help="write the shard address list here as JSON "
                            "(what shard-status --port-file reads)")
    serve.add_argument("--duration", type=float, default=None,
                       help="serve for this many seconds then exit "
                            "(default: until interrupted)")
    serve.set_defaults(handler=_cmd_serve)

    shst = sub.add_parser(
        "shard-status",
        help="query running shard servers for contracts held, journal "
             "epoch, and op counters",
    )
    shst.add_argument("--address", action="append", default=[],
                      dest="addresses", metavar="HOST:PORT",
                      help="shard address (repeatable)")
    shst.add_argument("--port-file", type=Path, default=None,
                      help="JSON address list written by serve")
    shst.add_argument("--json", action="store_true",
                      help="emit the per-shard status documents as JSON")
    shst.add_argument("--health", action="store_true",
                      help="print only an up/down health summary per "
                           "shard (no contract listings)")
    shst.set_defaults(handler=_cmd_shard_status)

    promote = sub.add_parser(
        "promote",
        help="promote a journal-shipping replica of a dead leader: "
             "catch up to the shipped journal tail, bump the epoch, "
             "write a fresh leader directory a shard server can serve",
    )
    promote.add_argument("leader", type=Path,
                         help="the dead leader's journaled directory "
                              "(the replication source)")
    promote.add_argument("directory", type=Path,
                         help="fresh directory for the promoted leader")
    promote.add_argument("--timeout", type=float, default=30.0,
                         help="catch-up timeout in seconds")
    promote.add_argument("--json", action="store_true",
                         help="emit the promotion report as JSON")
    promote.set_defaults(handler=_cmd_promote)

    demo = sub.add_parser("demo", help="run the airfare running example")
    demo.set_defaults(handler=_cmd_demo)

    check = sub.add_parser(
        "check",
        help="differential conformance run: random cases through the "
             "whole stack lattice, cross-checked against a brute-force "
             "oracle",
    )
    check.add_argument("--seed", type=int, default=0,
                       help="base seed; each case is reproducible from "
                            "(seed, case index)")
    check.add_argument("--cases", type=int, default=200,
                       help="number of random cases to generate")
    check.add_argument("--profile", choices=["tiny", "small", "wide"],
                       default="small",
                       help="case-shape profile (alphabet size, contract "
                            "count, formula depth)")
    check.add_argument("--configs", default=None,
                       help="comma-separated configuration names to run "
                            "(default: the full lattice)")
    check.add_argument("--artifacts", type=Path,
                       default=Path("conformance-artifacts"),
                       help="directory for failure-repro artifacts")
    check.add_argument("--no-shrink", action="store_true",
                       help="report failures without minimizing them")
    check.add_argument("--json", action="store_true",
                       help="emit the report (and metrics) as JSON")
    check.add_argument("--replay", type=Path, default=None,
                       help="replay one failure artifact instead of "
                            "generating cases")
    check.set_defaults(handler=_cmd_check)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection drills: simulated crashes mid-snapshot, "
             "journal truncation at byte boundaries, poison-pill "
             "quarantine — each verified to recover as documented",
    )
    chaos.add_argument("--mutations", type=int, default=None,
                       help="journal mutations the truncation drill "
                            "sweeps (default 12)")
    chaos.add_argument("--stride", type=int, default=1,
                       help="byte stride of the truncation sweep "
                            "(1 = every byte boundary)")
    chaos.add_argument("--drills", default=None,
                       help="comma-separated drill names to run "
                            "(default: all; see repro.check.chaos.DRILLS)")
    chaos.add_argument("--json", action="store_true",
                       help="emit the drill report as JSON")
    chaos.set_defaults(handler=_cmd_chaos)

    return parser


def _add_budget_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--deadline-ms", type=float, default=None,
                     help="wall-clock budget per query in milliseconds; "
                          "checks cut short degrade to 'maybe' answers")
    sub.add_argument("--step-budget", type=int, default=None,
                     help="per-candidate cap on permission-search steps")


def _budget_options(args: argparse.Namespace, **extra) -> QueryOptions:
    return QueryOptions(
        deadline_seconds=(
            args.deadline_ms / 1000.0
            if args.deadline_ms is not None else None
        ),
        step_budget=args.step_budget,
        **extra,
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.profile == "pathological":
        specs = pathological_specs(args.count, seed=args.seed)
    else:
        generator = WorkloadGenerator(
            vocabulary_size=args.vocabulary, seed=args.seed
        )
        specs = generator.generate_specs(args.count, args.patterns)
    docs = [
        {
            "name": f"contract-{i}",
            "clauses": [format_formula(c) for c in spec.clauses],
            "attributes": {},
        }
        for i, spec in enumerate(specs)
    ]
    args.out.write_text(json.dumps(docs, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {len(docs)} specifications to {args.out}")
    return 0


def _load_specs(path: Path) -> list[dict]:
    docs = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(docs, list):
        raise ReproError(f"{path}: expected a JSON list of specifications")
    return docs


def _build_db(docs: list[dict], config: BrokerConfig) -> ContractDatabase:
    db = ContractDatabase(config)
    for doc in docs:
        db.register(doc["name"], doc["clauses"], doc.get("attributes") or {})
    return db


def _cmd_stats(args: argparse.Namespace) -> int:
    from .bench.reporting import format_table

    docs = _load_specs(args.specs)
    start = time.perf_counter()
    db = _build_db(docs, BrokerConfig(use_projections=False))
    elapsed = time.perf_counter() - start
    stats = db.database_stats()
    print(format_table(
        ["metric", "value"],
        [(k, v) for k, v in stats.items()],
        title=f"Dataset statistics for {args.specs} "
              f"(built in {elapsed:.1f}s)",
    ))
    return 0


def _cmd_translate(args: argparse.Namespace) -> int:
    from .automata.serialize import to_dot

    ba = translate(parse(args.formula))
    if args.json:
        print(json.dumps(automaton_to_dict(ba), indent=2, sort_keys=True))
    elif args.dot:
        print(to_dot(ba))
    else:
        print(ba)
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    from .broker.persist import save_database

    config = BrokerConfig(
        prefilter_depth=args.index_depth,
        projection_subset_cap=args.projection_cap,
    )
    docs = _load_specs(args.specs)
    start = time.perf_counter()
    db = _build_db(docs, config)
    directory = save_database(db, args.out)
    print(f"registered {len(db)} contracts in "
          f"{time.perf_counter() - start:.1f}s; saved to {directory}")
    return 0


def _load_or_build_db(path: Path, config: BrokerConfig) -> ContractDatabase:
    """A database from a built directory or a JSON spec file, with a
    one-line progress report either way."""
    from .broker.persist import load_database

    start = time.perf_counter()
    if path.is_dir():
        db = load_database(path, config)
        print(f"loaded {len(db)} contracts in "
              f"{time.perf_counter() - start:.1f}s")
    else:
        db = _build_db(_load_specs(path), config)
        print(f"registered {len(db)} contracts in "
              f"{time.perf_counter() - start:.1f}s")
    return db


def _cmd_save(args: argparse.Namespace) -> int:
    from .broker.persist import save_database

    config = BrokerConfig(
        prefilter_depth=args.index_depth,
        projection_subset_cap=args.projection_cap,
    )
    db = _load_or_build_db(args.specs, config)
    start = time.perf_counter()
    directory = save_database(db, args.out)
    print(f"saved {len(db)} contracts (automata, seeds, encodings, "
          f"projections, index) to {directory} in "
          f"{time.perf_counter() - start:.1f}s")
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    from .broker.persist import load_database

    db = load_database(args.directory)
    report = db.load_report
    print(f"loaded {report.contracts} contracts in "
          f"{report.load_seconds:.2f}s")
    print(f"  automata    : {report.automata_restored} restored, "
          f"{len(report.retranslated)} retranslated")
    print(f"  seeds       : {report.seeds_restored} restored")
    print(f"  encodings   : {report.encoded_restored} restored")
    print(f"  projections : {report.projections_restored} restored")
    print(f"  index       : "
          f"{'restored' if report.index_restored else 'rebuilt'}")
    for warning in report.warnings:
        print(f"  warning: {warning}")
    if args.stats:
        for key, value in db.database_stats().items():
            print(f"  {key}: {value}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from .broker.spec import QuerySpec

    if not args.queries and not args.spec_files:
        raise ReproError("provide at least one --query or --spec")
    config = BrokerConfig(
        use_prefilter=not args.no_prefilter,
        use_projections=not args.no_projections,
        prefilter_depth=args.index_depth,
        projection_subset_cap=args.projection_cap,
    )
    db = _load_or_build_db(args.specs, config)
    options = _budget_options(args)
    if args.planner:
        options = options.evolve(use_planner=True)
    runs: list[tuple[str, object]] = [
        (text, options) for text in args.queries
    ]
    for path in args.spec_files:
        spec = QuerySpec.from_file(path)
        runs.append((spec.query, spec))
    for text, request in runs:
        outcome = db.query(request) if isinstance(request, QuerySpec) \
            else db.query(text, request)
        s = outcome.stats
        print(f"\nquery: {text}")
        print(f"  matched : {list(outcome.contract_names)}")
        if s.planned:
            print(f"  plan    : {s.plan_summary}")
        print(f"  pruning : {s.pruning_condition or '(prefilter off)'}")
        print(f"  phases  : translate {s.translation_seconds * 1000:.1f}ms | "
              f"prefilter {s.prefilter_seconds * 1000:.1f}ms | "
              f"permission {s.permission_seconds * 1000:.1f}ms")
        print(f"  checked : {s.checked} of {s.database_size} contracts "
              f"({s.pruning_ratio:.0%} pruned)")
        if outcome.degraded:
            print(f"  DEGRADED: {s.timed_out} timed out, "
                  f"{s.skipped} skipped; "
                  f"maybe: {list(outcome.maybe_names)}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .broker.spec import QuerySpec

    if (args.query is None) == (args.spec_file is None):
        raise ReproError("provide exactly one of --query or --spec")
    db = _load_or_build_db(args.specs, BrokerConfig())
    if args.spec_file is not None:
        qspec = QuerySpec.from_file(args.spec_file)
    else:
        qspec = QuerySpec(query=args.query)
    options = qspec.to_options().evolve(use_planner=True)
    plan = db.plan_query(qspec.query, options)
    outcome = None if args.no_run else db.query(qspec.query, options)

    if args.json:
        doc = {
            "query": qspec.query,
            "filter": qspec.filter.to_list(),
            "plan": plan.to_dict(),
        }
        if outcome is not None:
            s = outcome.stats
            doc["actual"] = {
                "database_size": s.database_size,
                "relational_matches": s.relational_matches,
                "candidates": s.candidates,
                "checked": s.checked,
                "permitted": s.permitted,
                "stage_order": s.stage_order,
                "matched": list(outcome.contract_names),
            }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0

    print(f"query : {qspec.query}")
    print(f"filter: {qspec.filter}")
    print(plan.explain())
    if outcome is not None:
        s = outcome.stats
        print("actual:")
        print(f"  relational matches : {s.relational_matches} "
              f"of {s.database_size}")
        print(f"  candidates checked : {s.checked} of {s.candidates}")
        print(f"  permitted          : {s.permitted} "
              f"-> {list(outcome.contract_names)}")
        print(f"  stage order        : {s.stage_order}")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from .stream.engine import read_event_log
    from .stream.options import MonitorOptions, MonitorStatus

    db = _load_or_build_db(args.specs, BrokerConfig())
    fleet = db.monitor_fleet(
        MonitorOptions(strict_vocabulary=args.strict_vocabulary)
    )
    for spec_text in args.watches:
        name, _, formula = spec_text.partition("=")
        if not formula:
            name = formula = spec_text
        fleet.register_watch(name.strip(), formula.strip())
    # watches registered on an already-doomed contract alert immediately
    emitted = list(fleet.alerts)
    for alert in emitted:
        print(json.dumps(alert.to_dict()) if args.json
              else alert.describe())

    if args.events is None or str(args.events) == "-":
        handle = sys.stdin
    else:
        handle = args.events.open("r", encoding="utf-8")
    events = deliveries = 0
    try:
        # one record per ingest call so alerts stream out as the log
        # unfolds (stdin may be a live pipe)
        for event in read_event_log(handle):
            report = fleet.ingest([event])
            events += 1
            deliveries += report.deliveries
            for alert in report.alerts:
                emitted.append(alert)
                print(json.dumps(alert.to_dict()) if args.json
                      else alert.describe())
    finally:
        if handle is not sys.stdin:
            handle.close()

    violated = sum(
        1 for name in fleet.contracts
        if fleet.status(name) is MonitorStatus.VIOLATED
    )
    summary = {
        "events": events,
        "deliveries": deliveries,
        "contracts": len(fleet.contracts),
        "active": len(fleet.active_contracts),
        "violated": violated,
        "alerts": len(emitted),
        "unknown_events": fleet.unknown_event_count,
    }
    if args.json:
        print(json.dumps({"summary": summary}, sort_keys=True))
    else:
        print(f"monitored {summary['contracts']} contracts over "
              f"{events} events ({deliveries} deliveries): "
              f"{summary['active']} active, {violated} violated, "
              f"{len(emitted)} alert(s), "
              f"{summary['unknown_events']} unknown event(s)")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .broker.cache import DEFAULT_CACHE_CAPACITY

    capacity = (DEFAULT_CACHE_CAPACITY if args.cache_capacity is None
                else args.cache_capacity)
    config = BrokerConfig(
        use_prefilter=not args.no_prefilter,
        use_projections=not args.no_projections,
        prefilter_depth=args.index_depth,
        projection_subset_cap=args.projection_cap,
        query_cache_capacity=capacity,
    )
    db = _load_or_build_db(args.specs, config)
    options = _budget_options(args, workers=args.workers)
    start = time.perf_counter()
    degraded = 0
    for _ in range(max(args.repeat, 1)):
        outcomes = db.query_many(args.queries, options)
        degraded += sum(1 for o in outcomes if o.degraded)
    elapsed = time.perf_counter() - start
    served = max(args.repeat, 1) * len(args.queries)
    print(f"served {served} queries "
          f"({len(args.queries)} distinct x {max(args.repeat, 1)} rounds, "
          f"workers={args.workers}) in {elapsed:.2f}s"
          + (f"; {degraded} degraded" if degraded else "")
          + "\n")
    if args.json:
        print(json.dumps(db.metrics_snapshot(), indent=2, sort_keys=True))
    else:
        print(db.metrics_report())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .broker.analytics import compare
    from .broker.persist import load_database

    if args.specs.is_dir():
        db = load_database(args.specs)
    else:
        db = _build_db(_load_specs(args.specs),
                       BrokerConfig(use_projections=False))
    by_name = {c.name: c for c in db.contracts()}
    missing = [n for n in (args.left, args.right) if n not in by_name]
    if missing:
        raise ReproError(
            f"unknown contract(s) {missing}; available: "
            f"{sorted(by_name)}"
        )
    result = compare(by_name[args.left], by_name[args.right],
                     limit=args.limit)
    print(f"{args.left} vs {args.right}: {result.relation.value}")
    if result.left_only is not None:
        print(f"  only {args.left} allows : {result.left_only}")
    if result.right_only is not None:
        print(f"  only {args.right} allows: {result.right_only}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .check import ConformanceRunner, configs_by_name, replay_artifact

    if args.replay is not None:
        result = replay_artifact(args.replay)
        print(result.summary())
        for disagreement in result.disagreements:
            print(disagreement.describe())
        return 1 if result.reproduced else 0

    config_names = (
        args.configs.split(",") if args.configs is not None else None
    )
    runner = ConformanceRunner(
        seed=args.seed,
        cases=args.cases,
        profile=args.profile,
        configs=configs_by_name(config_names),
        artifact_dir=args.artifacts,
        shrink=not args.no_shrink,
    )
    # The seed line is load-bearing: CI jobs fuzz with varying seeds and
    # this is what a failure report gets reproduced from.
    print(f"conformance check: seed={args.seed} cases={args.cases} "
          f"profile={args.profile} "
          f"configs={len(runner.configs)}")
    report = runner.run()
    if args.json:
        doc = report.to_dict()
        doc["metrics"] = runner.metrics.snapshot()
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(report.summary())
        for disagreement in report.disagreements:
            print()
            print(disagreement.describe())
    return 0 if report.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .check.chaos import DEFAULT_MUTATIONS, run_chaos_drills

    mutations = (
        args.mutations if args.mutations is not None else DEFAULT_MUTATIONS
    )
    drills = None
    if args.drills:
        drills = [name.strip() for name in args.drills.split(",")
                  if name.strip()]
    try:
        report = run_chaos_drills(
            mutations=mutations, stride=args.stride, drills=drills
        )
    except ValueError as exc:
        raise ReproError(str(exc)) from exc
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for result in report.results:
            print(result.describe())
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .dist import LocalCluster

    if args.shards < 1:
        raise ReproError(f"need at least one shard, got {args.shards}")
    cluster = LocalCluster(
        args.shards, directory=args.directory, mode=args.mode
    )
    try:
        for shard, (host, port) in enumerate(cluster.addresses):
            print(f"shard {shard}: {host}:{port}"
                  + (f"  [{cluster.shard_dir(shard)}]"
                     if cluster.directory else "  [memory]"))
        if args.port_file is not None:
            args.port_file.write_text(
                json.dumps([list(a) for a in cluster.addresses]) + "\n",
                encoding="utf-8",
            )
            print(f"addresses written to {args.port_file}")
        if args.specs is not None:
            with cluster.database() as db:
                for doc in _load_specs(args.specs):
                    db.register(doc["name"], doc["clauses"],
                                doc.get("attributes") or {})
                print(f"registered {len(db)} contracts across "
                      f"{args.shards} shard(s)")
        if args.duration is None:  # pragma: no cover - interactive mode
            print("serving until interrupted (ctrl-c to stop)")
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                pass
        elif args.duration > 0:
            time.sleep(args.duration)
    finally:
        cluster.stop()
        print("cluster stopped")
    return 0


def _shard_addresses(args: argparse.Namespace) -> list[tuple[str, int]]:
    addresses: list[tuple[str, int]] = []
    if args.port_file is not None:
        doc = json.loads(args.port_file.read_text(encoding="utf-8"))
        addresses.extend((str(h), int(p)) for h, p in doc)
    for text in args.addresses:
        host, _, port = text.rpartition(":")
        if not host or not port.isdigit():
            raise ReproError(
                f"bad --address {text!r}; expected HOST:PORT"
            )
        addresses.append((host, int(port)))
    if not addresses:
        raise ReproError("provide --address or --port-file")
    return addresses


def _cmd_shard_status(args: argparse.Namespace) -> int:
    from .dist import ShardClient
    from .errors import DistError

    statuses = []
    for position, (host, port) in enumerate(_shard_addresses(args)):
        # a dead shard is a *finding*, not a CLI failure: report it as
        # down and keep interrogating the rest of the cluster
        try:
            with ShardClient(host, port) as client:
                status = client.request({"op": "status"})
            status.pop("ok", None)
            status["up"] = True
        except DistError as exc:
            status = {
                "shard_id": position,
                "up": False,
                "error": str(exc),
                "contracts": None,
            }
        status["address"] = f"{host}:{port}"
        statuses.append(status)
    up = [s for s in statuses if s["up"]]
    if args.json:
        print(json.dumps({"shards": statuses}, indent=2, sort_keys=True))
        return 0
    for status in statuses:
        if not status["up"]:
            print(f"shard {status['shard_id']} @ {status['address']}: "
                  f"down ({status['error']})")
            continue
        if args.health:
            print(f"shard {status['shard_id']} @ {status['address']}: "
                  f"up, {status['contracts']} contract(s)")
            continue
        journal = status.get("journal")
        journal_text = (
            f"journal epoch {journal['epoch']}, {journal['records']} "
            f"record(s), {journal['size_bytes']}B"
            if journal else "memory-only"
        )
        print(f"shard {status['shard_id']} @ {status['address']}: "
              f"{status['contracts']} contract(s), {journal_text}")
        if status.get("names"):
            print(f"  contracts: {', '.join(status['names'])}")
    total = sum(s["contracts"] for s in up)
    print(f"{len(up)}/{len(statuses)} shard(s) up, "
          f"{total} contract(s) total")
    return 0


def _cmd_promote(args: argparse.Namespace) -> int:
    from .dist import Replica

    replica = Replica(args.leader)
    caught_up = replica.catch_up(timeout=args.timeout)
    report = replica.promote(args.directory)
    if args.json:
        print(json.dumps({
            "leader": str(args.leader),
            "directory": report.directory,
            "epoch": report.epoch,
            "contracts": report.contracts,
            "applied": report.applied,
            "resynced": caught_up.resynced,
        }, indent=2, sort_keys=True))
        return 0
    print(f"replica of {args.leader} caught up "
          f"(applied {caught_up.applied + report.applied} record(s))")
    print(f"promoted into {report.directory}: journal epoch "
          f"{report.epoch}, {report.contracts} contract(s)")
    print("serve the promoted directory behind a shard server and "
          "fail the coordinator's shard address over to it")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .workload.airfare import QUERIES, all_ticket_specs

    db = ContractDatabase()
    for spec in all_ticket_specs():
        contract = db.register(spec)
        print(f"registered {contract}")
    for name, info in QUERIES.items():
        outcome = db.query(info["ltl"])
        print(f"\n{name}: {info['ltl']}")
        print(f"  returned: {sorted(outcome.contract_names)}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
