"""Hypothesis strategies for LTL formulas, labels, runs and contracts.

Promoted from ``tests/strategies.py`` so they ship with the library:
the conformance harness's pytest drivers and any downstream test suite
can import them as :mod:`repro.check.strategies` (the old
``tests.strategies`` path remains as a thin re-export shim).

The formula strategy generates bounded-depth trees over a tiny
vocabulary; paired with the random-run strategy it drives the
differential tests between the ground-truth evaluator and the automata
pipeline, which are the strongest correctness checks in the suite.

Requires ``hypothesis`` (a test dependency) at import time — the
runtime harness deliberately uses :mod:`repro.check.generators` instead,
which has no such dependency.
"""

from __future__ import annotations

from hypothesis import strategies as st

from ..ltl import ast as A
from ..ltl.runs import Run

__all__ = [
    "EVENTS",
    "attribute_filters",
    "attribute_maps",
    "buchi_automata",
    "contract_specs",
    "filter_specs",
    "formulas",
    "labels",
    "props",
    "runs",
    "snapshots",
]

#: Small vocabulary keeps automata tiny and collision-rich.
EVENTS = ("a", "b", "c")


def props(events: tuple[str, ...] = EVENTS) -> st.SearchStrategy:
    return st.sampled_from(events).map(A.Prop)


def formulas(
    events: tuple[str, ...] = EVENTS, max_depth: int = 4
) -> st.SearchStrategy:
    """Random LTL formulas over ``events`` with bounded depth."""
    atoms = st.one_of(
        props(events),
        st.just(A.TRUE),
        st.just(A.FALSE),
    )

    def extend(children: st.SearchStrategy) -> st.SearchStrategy:
        unary = st.sampled_from([A.Not, A.Next, A.Finally, A.Globally])
        binary = st.sampled_from(
            [A.And, A.Or, A.Implies, A.Iff, A.Until, A.WeakUntil,
             A.Before, A.Release]
        )
        return st.one_of(
            st.builds(lambda op, x: op(x), unary, children),
            st.builds(lambda op, x, y: op(x, y), binary, children, children),
        )

    return st.recursive(atoms, extend, max_leaves=2 ** max_depth)


def snapshots(events: tuple[str, ...] = EVENTS) -> st.SearchStrategy:
    return st.sets(st.sampled_from(events)).map(frozenset)


def runs(
    events: tuple[str, ...] = EVENTS,
    max_prefix: int = 4,
    max_loop: int = 4,
) -> st.SearchStrategy:
    """Random ultimately-periodic runs over ``events``."""
    return st.builds(
        Run,
        st.lists(snapshots(events), max_size=max_prefix).map(tuple),
        st.lists(snapshots(events), min_size=1, max_size=max_loop).map(tuple),
    )


def labels(events: tuple[str, ...] = EVENTS) -> st.SearchStrategy:
    """Random satisfiable conjunction-of-literal labels."""
    from ..automata.labels import Label, neg, pos

    def build(assignment: dict) -> Label:
        literals = [
            pos(e) if polarity else neg(e)
            for e, polarity in assignment.items()
        ]
        return Label.of(literals)

    return st.dictionaries(
        st.sampled_from(events), st.booleans(), max_size=len(events)
    ).map(build)


def buchi_automata(
    events: tuple[str, ...] = EVENTS,
    max_states: int = 5,
    max_transitions: int = 10,
) -> st.SearchStrategy:
    """Random (not LTL-shaped) Büchi automata — arbitrary graphs with
    random literal-conjunction labels and random final sets.

    These exercise the automaton-generic algorithms (bisimulation,
    products, reductions, permission) on shapes the translator never
    produces: unreachable states, dead ends, parallel edges."""
    from ..automata.buchi import BuchiAutomaton, Transition

    @st.composite
    def build(draw):
        num_states = draw(st.integers(min_value=1, max_value=max_states))
        states = list(range(num_states))
        num_transitions = draw(
            st.integers(min_value=0, max_value=max_transitions)
        )
        transitions = [
            Transition(
                draw(st.sampled_from(states)),
                draw(labels(events)),
                draw(st.sampled_from(states)),
            )
            for _ in range(num_transitions)
        ]
        final = draw(st.sets(st.sampled_from(states)))
        return BuchiAutomaton(states, 0, transitions, final)

    return build()


# -- contract-database strategies (used by the conformance harness tests) -----

def attribute_maps() -> st.SearchStrategy:
    """Relational attribute dictionaries over the harness's typed
    schema (:func:`repro.check.generators.random_attributes`)."""
    from .generators import _ROUTES, _TIERS

    return st.fixed_dictionaries(
        {
            "price": st.integers(min_value=100, max_value=1000),
            "route": st.sampled_from(_ROUTES),
            "tier": st.sampled_from(_TIERS),
        }
    )


def contract_specs(
    events: tuple[str, ...] = EVENTS,
    max_clauses: int = 2,
    max_depth: int = 3,
) -> st.SearchStrategy:
    """Random :class:`~repro.broker.contract.ContractSpec` values with
    bounded-depth clauses and typed relational attributes."""
    from ..broker.contract import ContractSpec

    return st.builds(
        lambda tag, clauses, attributes: ContractSpec(
            name=f"spec-{tag}",
            clauses=tuple(clauses),
            attributes=attributes,
        ),
        st.integers(min_value=0, max_value=10 ** 6),
        st.lists(
            formulas(events, max_depth=max_depth),
            min_size=1,
            max_size=max_clauses,
        ),
        attribute_maps(),
    )


def filter_specs(max_conditions: int = 2) -> st.SearchStrategy:
    """Random serializable :class:`~repro.check.cases.FilterSpec`
    values over the :func:`attribute_maps` schema."""
    from .cases import FilterSpec
    from .generators import _ROUTES, _TIERS

    price_condition = st.tuples(
        st.just("price"),
        st.sampled_from(("<=", ">", ">=", "<")),
        st.sampled_from((200, 400, 600, 800)),
    )
    route_condition = st.one_of(
        st.tuples(st.just("route"), st.just("=="), st.sampled_from(_ROUTES)),
        st.tuples(
            st.just("route"),
            st.just("in"),
            st.lists(
                st.sampled_from(_ROUTES), min_size=1, max_size=2, unique=True
            ).map(tuple),
        ),
    )
    tier_condition = st.tuples(
        st.just("tier"), st.sampled_from(("==", "!=")), st.sampled_from(_TIERS)
    )
    return st.lists(
        st.one_of(price_condition, route_condition, tier_condition),
        max_size=max_conditions,
    ).map(lambda conditions: FilterSpec(tuple(conditions)))


def attribute_filters(max_conditions: int = 2) -> st.SearchStrategy:
    """Random built :class:`~repro.broker.relational.AttributeFilter`
    values (the materialized form of :func:`filter_specs`)."""
    return filter_specs(max_conditions).map(lambda spec: spec.build())
