"""Deterministic random-case generation for the conformance harness.

Unlike :mod:`repro.check.strategies` (hypothesis strategies for the
pytest suite), these generators are plain :mod:`random`-based so the
shipped harness needs no test-only dependency, reproduces a case from
``(seed, case_index)`` alone, and can report that pair in CI logs.

The formula distribution mirrors the hypothesis strategy the suite has
always used for its differential tests: bounded-depth trees over a tiny
vocabulary (collision-rich, so contracts and queries interact), the full
operator set including the exotic ``Before``/``Release``/``WeakUntil``,
plus constants.  Queries draw from one *extra* event the contracts never
cite, so the Example-4 regime (a required alien event is never
permitted) is generated organically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..ltl import ast as A
from ..ltl.printer import format_formula
from .cases import CheckCase, ContractCase, FilterSpec

_UNARY = (A.Not, A.Next, A.Finally, A.Globally)
_BINARY = (
    A.And,
    A.Or,
    A.Implies,
    A.Iff,
    A.Until,
    A.WeakUntil,
    A.Before,
    A.Release,
)

_ROUTES = ("AMS-JFK", "SFO-NRT", "CDG-GRU")
_TIERS = ("basic", "flex", "premium")


@dataclass(frozen=True)
class CheckProfile:
    """Shape of the generated cases.

    Small alphabets keep the oracle's explicit model tiny; the defaults
    generate the collision-rich regime the symbolic deciders find
    hardest (shared events across clauses and between contracts and
    queries).
    """

    contract_events: tuple[str, ...] = ("a", "b", "c")
    #: query pool; events beyond ``contract_events`` exercise Example 4
    query_events: tuple[str, ...] = ("a", "b", "c", "x")
    min_contracts: int = 2
    max_contracts: int = 4
    max_clauses: int = 2
    contract_depth: int = 3
    query_depth: int = 3
    max_filter_conditions: int = 2


#: Named profiles the CLI exposes.
PROFILES: dict[str, CheckProfile] = {
    "small": CheckProfile(),
    "tiny": CheckProfile(
        contract_events=("a", "b"),
        query_events=("a", "b", "x"),
        min_contracts=1,
        max_contracts=2,
        max_clauses=1,
        contract_depth=2,
        query_depth=2,
        max_filter_conditions=1,
    ),
    "wide": CheckProfile(
        contract_events=("a", "b", "c", "d"),
        query_events=("a", "b", "c", "d", "x"),
        min_contracts=3,
        max_contracts=5,
        max_clauses=3,
        contract_depth=4,
        query_depth=4,
    ),
}


def random_formula(
    rng: random.Random, events: tuple[str, ...], max_depth: int
) -> A.Formula:
    """A random bounded-depth LTL formula over ``events``."""
    if max_depth <= 0 or rng.random() < 0.30:
        roll = rng.random()
        if roll < 0.80:
            return A.Prop(rng.choice(events))
        if roll < 0.90:
            return A.TRUE
        return A.FALSE
    if rng.random() < 0.45:
        op = rng.choice(_UNARY)
        return op(random_formula(rng, events, max_depth - 1))
    op = rng.choice(_BINARY)
    return op(
        random_formula(rng, events, max_depth - 1),
        random_formula(rng, events, max_depth - 1),
    )


def random_attributes(rng: random.Random) -> dict:
    """Relational attributes from a small typed pool (so generated
    filters have realistic selectivity)."""
    return {
        "price": rng.randrange(100, 1001, 50),
        "route": rng.choice(_ROUTES),
        "tier": rng.choice(_TIERS),
    }


def random_filter_spec(
    rng: random.Random, max_conditions: int
) -> FilterSpec:
    """A random attribute filter over the :func:`random_attributes`
    schema; empty (match-all) filters are common on purpose."""
    count = rng.randint(0, max_conditions)
    conditions = []
    for _ in range(count):
        kind = rng.randrange(5)
        if kind == 0:
            conditions.append(
                ("price", rng.choice(("<=", ">")), rng.choice(
                    (200, 400, 600, 800)
                ))
            )
        elif kind == 1:
            conditions.append(("route", "==", rng.choice(_ROUTES)))
        elif kind == 2:
            conditions.append(
                ("route", "in", tuple(
                    rng.sample(_ROUTES, rng.randint(1, 2))
                ))
            )
        elif kind == 3:
            conditions.append(("tier", "!=", rng.choice(_TIERS)))
        else:
            conditions.append(("price", ">=", rng.choice((100, 300, 500))))
    return FilterSpec(tuple(conditions))


def generate_case(
    seed: int, case_index: int, profile: CheckProfile | None = None
) -> CheckCase:
    """The fully deterministic ``(seed, case_index)`` -> case mapping.

    The per-case RNG is derived from both numbers so any case of a run
    can be regenerated in isolation (the repro artifact records them).
    """
    profile = profile or PROFILES["small"]
    rng = random.Random(seed * 1_000_003 + case_index)
    num_contracts = rng.randint(profile.min_contracts, profile.max_contracts)
    contracts = []
    for i in range(num_contracts):
        num_clauses = rng.randint(1, profile.max_clauses)
        clauses = tuple(
            format_formula(
                random_formula(
                    rng, profile.contract_events, profile.contract_depth
                )
            )
            for _ in range(num_clauses)
        )
        contracts.append(
            ContractCase(
                name=f"c{i}",
                clauses=clauses,
                attributes=random_attributes(rng),
            )
        )
    query = format_formula(
        random_formula(rng, profile.query_events, profile.query_depth)
    )
    filter_spec = random_filter_spec(rng, profile.max_filter_conditions)
    return CheckCase(
        case_id=f"seed{seed}-case{case_index}",
        contracts=tuple(contracts),
        query=query,
        filter=filter_spec,
    )
