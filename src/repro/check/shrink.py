"""Greedy case minimization for failing conformance cases.

Hypothesis-style shrinking without the hypothesis dependency: repeatedly
try structure-reducing rewrites of the failing case — drop a contract,
drop a filter condition, drop a clause, replace the query or a clause by
one of its direct subformulas — and keep any rewrite for which the
failure predicate still holds, until a full pass makes no progress or
the attempt budget runs out.  Deterministic: candidates are enumerated
in a fixed order, so the same failure always shrinks to the same
artifact.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..ltl.parser import parse
from ..ltl.printer import format_formula
from .cases import CheckCase, ContractCase, FilterSpec

#: Total candidate evaluations one shrink is allowed (each evaluation
#: re-runs the oracle and the failing configuration).
DEFAULT_SHRINK_ATTEMPTS = 200


def _subformula_texts(text: str) -> list[str]:
    """The direct subformulas of an LTL text, rendered back to text."""
    try:
        formula = parse(text)
    except Exception:
        return []
    out = []
    for child in formula.children():
        rendered = format_formula(child)
        if rendered != text:
            out.append(rendered)
    return out


def _candidates(case: CheckCase) -> Iterator[CheckCase]:
    """Structure-reducing rewrites, most aggressive first."""
    # Drop whole contracts (keep at least one).
    if len(case.contracts) > 1:
        for i in range(len(case.contracts)):
            yield CheckCase(
                case_id=case.case_id,
                contracts=case.contracts[:i] + case.contracts[i + 1:],
                query=case.query,
                filter=case.filter,
            )
    # Drop filter conditions.
    for i in range(len(case.filter.conditions)):
        conditions = (
            case.filter.conditions[:i] + case.filter.conditions[i + 1:]
        )
        yield CheckCase(
            case_id=case.case_id,
            contracts=case.contracts,
            query=case.query,
            filter=FilterSpec(conditions),
        )
    # Drop clauses (keep at least one per contract).
    for i, contract in enumerate(case.contracts):
        if len(contract.clauses) <= 1:
            continue
        for j in range(len(contract.clauses)):
            smaller = ContractCase(
                name=contract.name,
                clauses=contract.clauses[:j] + contract.clauses[j + 1:],
                attributes=contract.attributes,
            )
            yield CheckCase(
                case_id=case.case_id,
                contracts=case.contracts[:i] + (smaller,)
                + case.contracts[i + 1:],
                query=case.query,
                filter=case.filter,
            )
    # Replace the query by a direct subformula.
    for text in _subformula_texts(case.query):
        yield CheckCase(
            case_id=case.case_id,
            contracts=case.contracts,
            query=text,
            filter=case.filter,
        )
    # Replace a clause by a direct subformula.
    for i, contract in enumerate(case.contracts):
        for j, clause in enumerate(contract.clauses):
            for text in _subformula_texts(clause):
                smaller = ContractCase(
                    name=contract.name,
                    clauses=contract.clauses[:j] + (text,)
                    + contract.clauses[j + 1:],
                    attributes=contract.attributes,
                )
                yield CheckCase(
                    case_id=case.case_id,
                    contracts=case.contracts[:i] + (smaller,)
                    + case.contracts[i + 1:],
                    query=case.query,
                    filter=case.filter,
                )


def shrink_case(
    case: CheckCase,
    still_fails: Callable[[CheckCase], bool],
    max_attempts: int = DEFAULT_SHRINK_ATTEMPTS,
) -> CheckCase:
    """The smallest case reachable by greedy rewriting for which
    ``still_fails`` holds.  ``still_fails`` must be total (return False
    on cases it cannot evaluate, e.g. untranslatable mutants)."""
    current = case
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _candidates(current):
            attempts += 1
            if attempts > max_attempts:
                break
            if still_fails(candidate):
                current = candidate
                progress = True
                break
    return current
