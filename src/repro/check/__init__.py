"""Differential conformance checking: the broker's independent safety net.

The permission problem is PSPACE-complete (Theorem 6) and the stack that
answers it has grown many interacting layers — the ndfs/scc deciders and
their seeds, the §4 prefilter set-trie, the §5 projection quotients, the
query compilation cache, parallel ``query_many``, execution budgets with
graceful degradation, and snapshot persistence.  Each layer has its own
unit tests, but none of those cross-check the *composed* stack against
an independent ground truth.

This package does, in the differential-testing style used for model
checkers and query engines (SQLancer, ltl2ba cross-validation):

* :mod:`repro.check.oracle` — an explicit-model permission decider that
  enumerates lassos over the contract×query product on the *concrete*
  snapshot alphabet, sharing no code with the ndfs/scc deciders;
* :mod:`repro.check.generators` — deterministic seeded generation of
  random contract specs, queries and attribute filters;
* :mod:`repro.check.runner` — executes every generated case through a
  lattice of ≥ 8 stack configurations (ndfs/scc × prefilter on/off ×
  projections on/off, plus cache-warm repeats, parallel ``query_many``,
  budgeted degradation, and a save→load round trip) and compares all of
  them against the oracle;
* :mod:`repro.check.shrink` / :mod:`repro.check.artifacts` — greedy case
  minimization and standalone JSON repro artifacts with a replay entry
  point (``contract-broker check --replay``).

The harness ships in ``src`` (not ``tests``) so CI fuzz jobs, the CLI
``check`` subcommand and downstream users can all invoke it; the pytest
suite drives the same machinery with small case budgets.
"""

from .artifacts import ReplayResult, load_artifact, replay_artifact, write_artifact
from .cases import CheckCase, ContractCase, FilterSpec
from .configs import StackConfig, config_lattice, configs_by_name
from .generators import PROFILES, CheckProfile, generate_case
from .oracle import OracleLimitError, oracle_permits
from .runner import ConformanceReport, ConformanceRunner, Disagreement

__all__ = [
    "CheckCase",
    "CheckProfile",
    "ConformanceReport",
    "ConformanceRunner",
    "ContractCase",
    "Disagreement",
    "FilterSpec",
    "OracleLimitError",
    "PROFILES",
    "ReplayResult",
    "StackConfig",
    "config_lattice",
    "configs_by_name",
    "generate_case",
    "load_artifact",
    "oracle_permits",
    "replay_artifact",
    "write_artifact",
]
