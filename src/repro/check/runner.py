"""The configuration-lattice differential runner.

For every generated case the runner computes the ground-truth permitted
set with the explicit-model oracle (filtered by the case's attribute
filter, evaluated directly against the contract attributes), then
executes the case through every :class:`~repro.check.configs.StackConfig`
and compares:

* **exact** configurations must return exactly the oracle's set, with no
  "maybe" residue;
* the **budgeted** configuration must satisfy the degradation invariant
  ``permitted ⊆ exact ⊆ permitted ∪ maybe``.

Contract translation is shared across configurations (via
``PrebuiltArtifacts``) because the translator is identical in every
cell; everything downstream — index build, projection build, seeds,
deciders, cache, thread pool, persistence — runs per configuration, so a
divergence isolates the differing layer.

Any violation is recorded as a :class:`Disagreement`, greedily shrunk
(:mod:`repro.check.shrink`) and written out as a standalone JSON repro
artifact (:mod:`repro.check.artifacts`).  Progress and failure counts
are surfaced through a :class:`~repro.obs.metrics.MetricsRegistry` so a
long fuzz run can be watched like any other broker workload.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..automata.ltl2ba import translate
from ..broker.database import ContractDatabase
from ..broker.options import Degradation, PrebuiltArtifacts, QueryOptions
from ..errors import ReproError, TranslationError
from ..obs.metrics import MetricsRegistry
from .cases import CheckCase
from .configs import BUDGET_CONFIG_STEPS, StackConfig, config_lattice
from .generators import PROFILES, CheckProfile, generate_case
from .oracle import OracleLimitError, oracle_permits
from .shrink import shrink_case


@dataclass
class Disagreement:
    """One configuration's answer diverging from the oracle."""

    case: CheckCase
    config_name: str
    #: which answer of the configuration diverged (a cache-warm run
    #: checks both its cold and its warm answer)
    label: str
    #: "exact-mismatch", "degradation-violation", or "error"
    kind: str
    expected: tuple[str, ...]
    got: tuple[str, ...]
    maybe: tuple[str, ...] = ()
    detail: str = ""
    artifact_path: str | None = None

    def describe(self) -> str:
        lines = [
            f"{self.config_name} [{self.label}] {self.kind} on "
            f"{self.case.case_id}:",
            f"  query    : {self.case.query}",
            f"  filter   : {self.case.filter}",
            f"  expected : {sorted(self.expected)}",
            f"  got      : {sorted(self.got)}"
            + (f" maybe={sorted(self.maybe)}" if self.maybe else ""),
        ]
        if self.detail:
            lines.append(f"  detail   : {self.detail}")
        if self.artifact_path:
            lines.append(f"  artifact : {self.artifact_path}")
        return "\n".join(lines)


@dataclass
class ConformanceReport:
    """The outcome of one conformance run."""

    seed: int
    cases_requested: int
    config_names: tuple[str, ...] = ()
    cases_run: int = 0
    cases_skipped: int = 0
    disagreements: list[Disagreement] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.disagreements

    @property
    def configs_run(self) -> int:
        return self.cases_run * len(self.config_names)

    def summary(self) -> str:
        verdict = (
            "OK"
            if self.ok
            else f"{len(self.disagreements)} DISAGREEMENT(S)"
        )
        return (
            f"conformance seed={self.seed}: {self.cases_run} case(s) "
            f"({self.cases_skipped} skipped) x {len(self.config_names)} "
            f"configuration(s) = {self.configs_run} differential run(s) "
            f"in {self.elapsed_seconds:.1f}s -> {verdict}"
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "cases_requested": self.cases_requested,
            "cases_run": self.cases_run,
            "cases_skipped": self.cases_skipped,
            "configs": list(self.config_names),
            "elapsed_seconds": self.elapsed_seconds,
            "ok": self.ok,
            "disagreements": [
                {
                    "config": d.config_name,
                    "label": d.label,
                    "kind": d.kind,
                    "case": d.case.to_dict(),
                    "expected": sorted(d.expected),
                    "got": sorted(d.got),
                    "maybe": sorted(d.maybe),
                    "detail": d.detail,
                    "artifact": d.artifact_path,
                }
                for d in self.disagreements
            ],
        }


class ConformanceRunner:
    """Drives generation → oracle → configuration lattice → artifacts.

    Args:
        seed: base seed; case ``i`` is fully determined by ``(seed, i)``.
        cases: how many cases to generate and check.
        profile: a :class:`~repro.check.generators.CheckProfile` or the
            name of one of :data:`~repro.check.generators.PROFILES`.
        configs: the :class:`StackConfig` tuple to sweep (default: the
            full 15-point lattice).
        artifact_dir: where failure repro artifacts are written
            (``None`` = don't write artifacts).
        shrink: greedily minimize failing cases before reporting.
        metrics: an external registry to feed (default: a fresh one on
            ``runner.metrics``).
    """

    def __init__(
        self,
        seed: int = 0,
        cases: int = 100,
        profile: CheckProfile | str = "small",
        configs: tuple[StackConfig, ...] | None = None,
        artifact_dir: str | Path | None = None,
        shrink: bool = True,
        metrics: MetricsRegistry | None = None,
    ):
        self.seed = seed
        self.cases_requested = cases
        if isinstance(profile, str):
            if profile not in PROFILES:
                raise ReproError(
                    f"unknown check profile {profile!r}; available: "
                    f"{sorted(PROFILES)}"
                )
            profile = PROFILES[profile]
        self.profile = profile
        self.configs = tuple(configs) if configs is not None else config_lattice()
        self.artifact_dir = Path(artifact_dir) if artifact_dir else None
        self.shrink_enabled = shrink
        self.metrics = metrics or MetricsRegistry()

    # -- one case ---------------------------------------------------------------------

    def check_case(
        self,
        case: CheckCase,
        configs: tuple[StackConfig, ...] | None = None,
    ) -> list[Disagreement]:
        """Evaluate one case against the oracle across ``configs``
        (default: the runner's lattice); returns the disagreements
        without shrinking or artifact writing.  Raises
        :class:`~repro.errors.TranslationError` /
        :class:`~repro.check.oracle.OracleLimitError` when the case
        cannot be materialized."""
        specs, bas, query_ba = self._materialize(case)
        expected = self._expected_names(case, specs, bas, query_ba)
        failures: list[Disagreement] = []
        for config in configs if configs is not None else self.configs:
            failures.extend(
                self._check_config(case, specs, bas, expected, config)
            )
            self.metrics.inc("check.configs_run")
        return failures

    def _materialize(self, case: CheckCase):
        specs = case.specs()
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ReproError(
                f"case {case.case_id} has duplicate contract names"
            )
        bas = {spec.name: translate(spec.formula) for spec in specs}
        query_ba = translate(case.query_formula())
        return specs, bas, query_ba

    def _expected_names(self, case, specs, bas, query_ba) -> frozenset[str]:
        """The ground truth: oracle-permitted among filter matches."""
        attribute_filter = case.filter.build()
        permitted = set()
        for spec in specs:
            if not attribute_filter.matches(spec.attributes):
                continue
            if oracle_permits(bas[spec.name], query_ba, spec.vocabulary):
                permitted.add(spec.name)
        return frozenset(permitted)

    def _build_db(self, specs, bas, config: StackConfig) -> ContractDatabase:
        db = ContractDatabase(config.broker_config())
        for spec in specs:
            db.register(spec, prebuilt=PrebuiltArtifacts(ba=bas[spec.name]))
        return db

    def _run_config(
        self, case: CheckCase, specs, bas, config: StackConfig
    ) -> list[tuple[str, tuple[str, ...], tuple[str, ...]]]:
        """Execute one configuration; returns ``(label, permitted,
        maybe)`` answer tuples (cache-warm yields two)."""
        options = QueryOptions(attribute_filter=case.filter.build())
        if config.mode == "journal":
            # snapshot + journal-tail recovery must agree with the
            # oracle bit-for-bit: half the contracts live only in the
            # write-ahead journal when the directory is reopened
            from ..broker.journal import open_database
            from ..broker.persist import save_database

            with tempfile.TemporaryDirectory(
                prefix="repro-check-"
            ) as directory:
                live = open_database(
                    directory, config=config.broker_config()
                )
                half = (len(specs) + 1) // 2
                for spec in specs[:half]:
                    live.register(
                        spec, prebuilt=PrebuiltArtifacts(ba=bas[spec.name])
                    )
                save_database(live, directory)
                for spec in specs[half:]:
                    live.register(
                        spec, prebuilt=PrebuiltArtifacts(ba=bas[spec.name])
                    )
                recovered = open_database(
                    directory, config=config.broker_config()
                )
                outcome = recovered.query(case.query, options)
            return [("journal", outcome.contract_names, outcome.maybe_names)]
        db = self._build_db(specs, bas, config)
        if config.mode == "direct":
            outcome = db.query(case.query, options)
            return [("direct", outcome.contract_names, outcome.maybe_names)]
        if config.mode == "cache_warm":
            cold = db.query(case.query, options)
            warm = db.query(case.query, options)
            return [
                ("cold", cold.contract_names, cold.maybe_names),
                ("warm", warm.contract_names, warm.maybe_names),
            ]
        if config.mode == "parallel":
            outcome = db.query_many(
                [case.query], options.evolve(workers=2)
            )[0]
            return [("parallel", outcome.contract_names, outcome.maybe_names)]
        if config.mode == "budget":
            outcome = db.query(
                case.query,
                options.evolve(
                    step_budget=BUDGET_CONFIG_STEPS,
                    degradation=Degradation.MAYBE,
                ),
            )
            return [("budget", outcome.contract_names, outcome.maybe_names)]
        if config.mode == "roundtrip":
            from ..broker.persist import load_database, save_database

            with tempfile.TemporaryDirectory(
                prefix="repro-check-"
            ) as directory:
                save_database(db, directory)
                loaded = load_database(directory)
            outcome = loaded.query(case.query, options)
            return [
                ("roundtrip", outcome.contract_names, outcome.maybe_names)
            ]
        raise ReproError(f"unknown configuration mode {config.mode!r}")

    def _check_config(
        self,
        case: CheckCase,
        specs,
        bas,
        expected: frozenset[str],
        config: StackConfig,
    ) -> list[Disagreement]:
        try:
            answers = self._run_config(case, specs, bas, config)
        except Exception as exc:  # the harness must survive stack crashes
            return [
                Disagreement(
                    case=case,
                    config_name=config.name,
                    label=config.mode,
                    kind="error",
                    expected=tuple(sorted(expected)),
                    got=(),
                    detail=f"{type(exc).__name__}: {exc}",
                )
            ]
        failures = []
        for label, permitted, maybe in answers:
            got = frozenset(permitted)
            maybe_set = frozenset(maybe)
            if config.exact:
                if got != expected or maybe_set:
                    failures.append(
                        Disagreement(
                            case=case,
                            config_name=config.name,
                            label=label,
                            kind="exact-mismatch",
                            expected=tuple(sorted(expected)),
                            got=tuple(sorted(got)),
                            maybe=tuple(sorted(maybe_set)),
                        )
                    )
            elif not (got <= expected <= got | maybe_set):
                failures.append(
                    Disagreement(
                        case=case,
                        config_name=config.name,
                        label=label,
                        kind="degradation-violation",
                        expected=tuple(sorted(expected)),
                        got=tuple(sorted(got)),
                        maybe=tuple(sorted(maybe_set)),
                    )
                )
        return failures

    # -- the full run -----------------------------------------------------------------

    def _still_fails(self, config: StackConfig):
        """The shrink predicate: does ``config`` still disagree with the
        oracle on a candidate case?"""

        def predicate(candidate: CheckCase) -> bool:
            try:
                return bool(self.check_case(candidate, (config,)))
            except ReproError:
                return False

        return predicate

    def _handle_failure(
        self, failure: Disagreement, original: CheckCase
    ) -> Disagreement:
        """Shrink a failing case, re-derive the disagreement on the
        shrunk case, and write the repro artifact."""
        from .artifacts import write_artifact

        case = failure.case
        if self.shrink_enabled:
            config = next(
                c for c in self.configs if c.name == failure.config_name
            )
            shrunk = shrink_case(case, self._still_fails(config))
            if shrunk is not case:
                try:
                    refreshed = self.check_case(shrunk, (config,))
                except ReproError:
                    refreshed = []
                if refreshed:
                    failure = refreshed[0]
        if self.artifact_dir is not None:
            path = write_artifact(
                self.artifact_dir,
                failure,
                seed=self.seed,
                original_case=original,
            )
            failure.artifact_path = str(path)
            self.metrics.inc("check.artifacts_written")
        return failure

    def run(self) -> ConformanceReport:
        report = ConformanceReport(
            seed=self.seed,
            cases_requested=self.cases_requested,
            config_names=tuple(c.name for c in self.configs),
        )
        started = time.perf_counter()
        for index in range(self.cases_requested):
            case = generate_case(self.seed, index, self.profile)
            case_started = time.perf_counter()
            try:
                failures = self.check_case(case)
            except (TranslationError, OracleLimitError):
                report.cases_skipped += 1
                self.metrics.inc("check.cases_skipped")
                continue
            report.cases_run += 1
            self.metrics.inc("check.cases")
            self.metrics.observe(
                "check.case_seconds", time.perf_counter() - case_started
            )
            for failure in failures:
                self.metrics.inc("check.disagreements")
                report.disagreements.append(
                    self._handle_failure(failure, case)
                )
        report.elapsed_seconds = time.perf_counter() - started
        return report
