"""The configuration-lattice differential runner.

For every generated case the runner computes the ground-truth permitted
set with the explicit-model oracle (filtered by the case's attribute
filter, evaluated directly against the contract attributes), then
executes the case through every :class:`~repro.check.configs.StackConfig`
and compares:

* **exact** configurations must return exactly the oracle's set, with no
  "maybe" residue;
* the **budgeted** configuration must satisfy the degradation invariant
  ``permitted ⊆ exact ⊆ permitted ∪ maybe``.

Contract translation is shared across configurations (via
``PrebuiltArtifacts``) because the translator is identical in every
cell; everything downstream — index build, projection build, seeds,
deciders, cache, thread pool, persistence — runs per configuration, so a
divergence isolates the differing layer.

Any violation is recorded as a :class:`Disagreement`, greedily shrunk
(:mod:`repro.check.shrink`) and written out as a standalone JSON repro
artifact (:mod:`repro.check.artifacts`).  Progress and failure counts
are surfaced through a :class:`~repro.obs.metrics.MetricsRegistry` so a
long fuzz run can be watched like any other broker workload.
"""

from __future__ import annotations

import random
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..automata.encode import encode_automaton
from ..automata.ltl2ba import translate
from ..broker.database import ContractDatabase
from ..broker.options import Degradation, PrebuiltArtifacts, QueryOptions
from ..errors import ReproError, TranslationError
from ..obs.metrics import MetricsRegistry
from .cases import CheckCase
from .configs import BUDGET_CONFIG_STEPS, StackConfig, config_lattice
from .generators import PROFILES, CheckProfile, generate_case
from .oracle import OracleLimitError, oracle_permits
from .shrink import shrink_case

#: Modes whose expected answer is the *object monitor's* transcript on
#: a generated event trace, not the oracle's permitted set.
MONITOR_MODES = ("monitor", "monitor_unknown")

#: Length of the generated trace the monitor cells replay per case.
MONITOR_TRACE_LENGTH = 6

#: Events guaranteed outside every generated vocabulary, salted into
#: the ``monitor_unknown`` trace.
MONITOR_ALIEN_EVENTS = ("zz-alpha", "zz-beta")

#: How many shards the ``sharded`` conformance cell spreads a case over.
SHARDED_CELL_SHARDS = 3


def _transcript(
    name: str,
    statuses: list[bool],
    watch: list[bool],
    violation_index: int | None,
    unknown_events: int,
) -> str:
    """One contract's monitor verdicts packed into a comparable string:
    ``A``/``V`` per prefix, ``1``/``0`` watch satisfiability per prefix
    (both starting with the empty prefix), the violation index and the
    unknown-event count."""
    status_chars = "".join("A" if active else "V" for active in statuses)
    watch_chars = "".join("1" if sat else "0" for sat in watch)
    return (
        f"{name}|status={status_chars}|watch={watch_chars}"
        f"|violation={violation_index}|unknown={unknown_events}"
    )


@dataclass
class Disagreement:
    """One configuration's answer diverging from the oracle."""

    case: CheckCase
    config_name: str
    #: which answer of the configuration diverged (a cache-warm run
    #: checks both its cold and its warm answer)
    label: str
    #: "exact-mismatch", "degradation-violation", or "error"
    kind: str
    expected: tuple[str, ...]
    got: tuple[str, ...]
    maybe: tuple[str, ...] = ()
    detail: str = ""
    artifact_path: str | None = None

    def describe(self) -> str:
        lines = [
            f"{self.config_name} [{self.label}] {self.kind} on "
            f"{self.case.case_id}:",
            f"  query    : {self.case.query}",
            f"  filter   : {self.case.filter}",
            f"  expected : {sorted(self.expected)}",
            f"  got      : {sorted(self.got)}"
            + (f" maybe={sorted(self.maybe)}" if self.maybe else ""),
        ]
        if self.detail:
            lines.append(f"  detail   : {self.detail}")
        if self.artifact_path:
            lines.append(f"  artifact : {self.artifact_path}")
        return "\n".join(lines)


@dataclass
class ConformanceReport:
    """The outcome of one conformance run."""

    seed: int
    cases_requested: int
    config_names: tuple[str, ...] = ()
    cases_run: int = 0
    cases_skipped: int = 0
    disagreements: list[Disagreement] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.disagreements

    @property
    def configs_run(self) -> int:
        return self.cases_run * len(self.config_names)

    def summary(self) -> str:
        verdict = (
            "OK"
            if self.ok
            else f"{len(self.disagreements)} DISAGREEMENT(S)"
        )
        return (
            f"conformance seed={self.seed}: {self.cases_run} case(s) "
            f"({self.cases_skipped} skipped) x {len(self.config_names)} "
            f"configuration(s) = {self.configs_run} differential run(s) "
            f"in {self.elapsed_seconds:.1f}s -> {verdict}"
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "cases_requested": self.cases_requested,
            "cases_run": self.cases_run,
            "cases_skipped": self.cases_skipped,
            "configs": list(self.config_names),
            "elapsed_seconds": self.elapsed_seconds,
            "ok": self.ok,
            "disagreements": [
                {
                    "config": d.config_name,
                    "label": d.label,
                    "kind": d.kind,
                    "case": d.case.to_dict(),
                    "expected": sorted(d.expected),
                    "got": sorted(d.got),
                    "maybe": sorted(d.maybe),
                    "detail": d.detail,
                    "artifact": d.artifact_path,
                }
                for d in self.disagreements
            ],
        }


class ConformanceRunner:
    """Drives generation → oracle → configuration lattice → artifacts.

    Args:
        seed: base seed; case ``i`` is fully determined by ``(seed, i)``.
        cases: how many cases to generate and check.
        profile: a :class:`~repro.check.generators.CheckProfile` or the
            name of one of :data:`~repro.check.generators.PROFILES`.
        configs: the :class:`StackConfig` tuple to sweep (default: the
            full 23-point lattice).
        artifact_dir: where failure repro artifacts are written
            (``None`` = don't write artifacts).
        shrink: greedily minimize failing cases before reporting.
        metrics: an external registry to feed (default: a fresh one on
            ``runner.metrics``).
    """

    def __init__(
        self,
        seed: int = 0,
        cases: int = 100,
        profile: CheckProfile | str = "small",
        configs: tuple[StackConfig, ...] | None = None,
        artifact_dir: str | Path | None = None,
        shrink: bool = True,
        metrics: MetricsRegistry | None = None,
    ):
        self.seed = seed
        self.cases_requested = cases
        if isinstance(profile, str):
            if profile not in PROFILES:
                raise ReproError(
                    f"unknown check profile {profile!r}; available: "
                    f"{sorted(PROFILES)}"
                )
            profile = PROFILES[profile]
        self.profile = profile
        self.configs = tuple(configs) if configs is not None else config_lattice()
        self.artifact_dir = Path(artifact_dir) if artifact_dir else None
        self.shrink_enabled = shrink
        self.metrics = metrics or MetricsRegistry()

    # -- one case ---------------------------------------------------------------------

    def check_case(
        self,
        case: CheckCase,
        configs: tuple[StackConfig, ...] | None = None,
    ) -> list[Disagreement]:
        """Evaluate one case against the oracle across ``configs``
        (default: the runner's lattice); returns the disagreements
        without shrinking or artifact writing.  Raises
        :class:`~repro.errors.TranslationError` /
        :class:`~repro.check.oracle.OracleLimitError` when the case
        cannot be materialized."""
        specs, bas, query_ba = self._materialize(case)
        expected = self._expected_names(case, specs, bas, query_ba)
        monitor_expected: dict[str, frozenset[str]] = {}
        failures: list[Disagreement] = []
        for config in configs if configs is not None else self.configs:
            if config.mode in MONITOR_MODES:
                # the monitor cells compare against the object monitor's
                # transcripts, not the oracle's permitted set
                config_expected = monitor_expected.get(config.mode)
                if config_expected is None:
                    config_expected = self._monitor_transcripts(
                        case, specs, bas, query_ba, config.mode,
                        implementation="object",
                    )
                    monitor_expected[config.mode] = config_expected
            else:
                config_expected = expected
            failures.extend(
                self._check_config(case, specs, bas, config_expected, config)
            )
            self.metrics.inc("check.configs_run")
        return failures

    def _materialize(self, case: CheckCase):
        specs = case.specs()
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ReproError(
                f"case {case.case_id} has duplicate contract names"
            )
        bas = {spec.name: translate(spec.formula) for spec in specs}
        query_ba = translate(case.query_formula())
        return specs, bas, query_ba

    def _expected_names(self, case, specs, bas, query_ba) -> frozenset[str]:
        """The ground truth: oracle-permitted among filter matches."""
        attribute_filter = case.filter.build()
        permitted = set()
        for spec in specs:
            if not attribute_filter.matches(spec.attributes):
                continue
            if oracle_permits(bas[spec.name], query_ba, spec.vocabulary):
                permitted.add(spec.name)
        return frozenset(permitted)

    def _build_db(self, specs, bas, config: StackConfig) -> ContractDatabase:
        db = ContractDatabase(config.broker_config())
        for spec in specs:
            db.register(spec, prebuilt=PrebuiltArtifacts(ba=bas[spec.name]))
        return db

    def _run_config(
        self, case: CheckCase, specs, bas, config: StackConfig
    ) -> list[tuple[str, tuple[str, ...], tuple[str, ...]]]:
        """Execute one configuration; returns ``(label, permitted,
        maybe)`` answer tuples (cache-warm yields two)."""
        if config.mode in MONITOR_MODES:
            got = self._monitor_transcripts(
                case, specs, bas, translate(case.query_formula()),
                config.mode, implementation="encoded",
            )
            return [(config.mode, tuple(sorted(got)), ())]
        options = QueryOptions(attribute_filter=case.filter.build())
        if config.mode == "journal":
            # snapshot + journal-tail recovery must agree with the
            # oracle bit-for-bit: half the contracts live only in the
            # write-ahead journal when the directory is reopened
            from ..broker.journal import open_database
            from ..broker.persist import save_database

            with tempfile.TemporaryDirectory(
                prefix="repro-check-"
            ) as directory:
                live = open_database(
                    directory, config=config.broker_config()
                )
                half = (len(specs) + 1) // 2
                for spec in specs[:half]:
                    live.register(
                        spec, prebuilt=PrebuiltArtifacts(ba=bas[spec.name])
                    )
                save_database(live, directory)
                for spec in specs[half:]:
                    live.register(
                        spec, prebuilt=PrebuiltArtifacts(ba=bas[spec.name])
                    )
                recovered = open_database(
                    directory, config=config.broker_config()
                )
                outcome = recovered.query(case.query, options)
            return [("journal", outcome.contract_names, outcome.maybe_names)]
        if config.mode == "sharded":
            return self._run_sharded(case, specs, config)
        if config.mode == "replicated":
            return self._run_replicated(case, specs, bas, config)
        if config.mode == "flaky_network":
            return self._run_flaky_network(case, specs, config)
        if config.mode == "failover":
            return self._run_failover(case, specs, config)
        db = self._build_db(specs, bas, config)
        if config.mode == "direct":
            outcome = db.query(case.query, options)
            return [("direct", outcome.contract_names, outcome.maybe_names)]
        if config.mode == "planner":
            outcome = db.query(case.query, options.evolve(use_planner=True))
            return [("planner", outcome.contract_names, outcome.maybe_names)]
        if config.mode == "cache_warm":
            cold = db.query(case.query, options)
            warm = db.query(case.query, options)
            return [
                ("cold", cold.contract_names, cold.maybe_names),
                ("warm", warm.contract_names, warm.maybe_names),
            ]
        if config.mode == "parallel":
            outcome = db.query_many(
                [case.query], options.evolve(workers=2)
            )[0]
            return [("parallel", outcome.contract_names, outcome.maybe_names)]
        if config.mode == "budget":
            outcome = db.query(
                case.query,
                options.evolve(
                    step_budget=BUDGET_CONFIG_STEPS,
                    degradation=Degradation.MAYBE,
                ),
            )
            return [("budget", outcome.contract_names, outcome.maybe_names)]
        if config.mode == "roundtrip":
            from ..broker.persist import load_database, save_database

            with tempfile.TemporaryDirectory(
                prefix="repro-check-"
            ) as directory:
                save_database(db, directory)
                loaded = load_database(directory)
            outcome = loaded.query(case.query, options)
            return [
                ("roundtrip", outcome.contract_names, outcome.maybe_names)
            ]
        raise ReproError(f"unknown configuration mode {config.mode!r}")

    def _run_sharded(self, case: CheckCase, specs, config: StackConfig):
        """The ``sharded`` cell: every contract registered through a
        3-shard coordinator, the query answered by fan-out + merge.
        Contracts ship as clause text over the wire (each shard
        re-translates deterministically), so this exercises the whole
        placement → protocol → merge path."""
        from ..dist import LocalCluster

        options = QueryOptions(attribute_filter=case.filter.build())
        with LocalCluster(
            SHARDED_CELL_SHARDS, config=config.broker_config()
        ) as cluster:
            db = cluster.database()
            try:
                for spec in specs:
                    db.register(
                        spec.name,
                        [str(clause) for clause in spec.clauses],
                        dict(spec.attributes),
                    )
                outcome = db.query(case.query, options)
            finally:
                db.close()
        return [("sharded", outcome.contract_names, outcome.maybe_names)]

    def _run_flaky_network(self, case: CheckCase, specs,
                           config: StackConfig):
        """The ``flaky-network`` cell: the sharded path with transient
        faults armed on the coordinator's ``dist.send``/``dist.recv``
        seams — two injected transport failures per query, which the
        RPC retry machinery must absorb without changing the answer
        (invariant 16, never-failed half)."""
        from ..core.faults import FAULTS
        from ..core.retry import BackoffPolicy
        from ..dist import LocalCluster

        options = QueryOptions(attribute_filter=case.filter.build())
        with LocalCluster(
            SHARDED_CELL_SHARDS, config=config.broker_config()
        ) as cluster:
            db = cluster.database(retry=BackoffPolicy(
                max_retries=2, base_seconds=0.002, cap_seconds=0.01,
            ))
            try:
                for spec in specs:
                    db.register(
                        spec.name,
                        [str(clause) for clause in spec.clauses],
                        dict(spec.attributes),
                    )
                # two faults, at most two retries per shard: absorbed
                # no matter which shards they land on
                FAULTS.fail_at("dist.send", nth=1, times=1,
                               exc=OSError("injected send fault"))
                FAULTS.fail_at("dist.recv", nth=1, times=1,
                               exc=OSError("injected recv fault"))
                try:
                    outcome = db.query(case.query, options)
                finally:
                    FAULTS.reset()
            finally:
                db.close()
        return [
            ("flaky-network", outcome.contract_names, outcome.maybe_names)
        ]

    def _run_failover(self, case: CheckCase, specs, config: StackConfig):
        """The ``failover`` cell: a journaled 2-shard cluster whose
        leader dies after registration; its caught-up replica is
        promoted (epoch bump) and the coordinator fails the shard
        address over — the re-answered query must still match the
        oracle, on the same global contract ids (invariant 16)."""
        from ..dist import LocalCluster

        options = QueryOptions(attribute_filter=case.filter.build())
        with tempfile.TemporaryDirectory(prefix="repro-check-") as tmp:
            with LocalCluster(2, directory=Path(tmp) / "cluster",
                              config=config.broker_config()) as cluster:
                db = cluster.database()
                try:
                    for spec in specs:
                        db.register(
                            spec.name,
                            [str(clause) for clause in spec.clauses],
                            dict(spec.attributes),
                        )
                    replica = cluster.replica(0)
                    replica.catch_up()
                    cluster.stop_shard(0)
                    replica.promote(Path(tmp) / "promoted")
                    address = cluster.restart_shard(0, db=replica.db)
                    db.fail_over(0, address)
                    outcome = db.query(case.query, options)
                finally:
                    db.close()
        return [("failover", outcome.contract_names, outcome.maybe_names)]

    def _run_replicated(self, case: CheckCase, specs, bas,
                        config: StackConfig):
        """The ``replicated`` cell: a journaled leader with a mid-stream
        snapshot+compaction, and a journal-shipping replica that must
        survive the epoch bump (snapshot re-sync) and then answer
        exactly like the leader — which must answer like the oracle."""
        from ..broker.journal import open_database
        from ..broker.persist import save_database
        from ..dist.replica import Replica

        options = QueryOptions(attribute_filter=case.filter.build())
        with tempfile.TemporaryDirectory(prefix="repro-check-") as directory:
            leader = open_database(directory, config=config.broker_config())
            half = (len(specs) + 1) // 2
            for spec in specs[:half]:
                leader.register(
                    spec, prebuilt=PrebuiltArtifacts(ba=bas[spec.name])
                )
            replica = Replica(directory, config=config.broker_config())
            replica.poll()  # catches the pre-compaction journal tail
            # snapshot + compact bumps the epoch: the replica's byte
            # cursor dies and it must re-sync from the snapshot
            save_database(leader, directory)
            for spec in specs[half:]:
                leader.register(
                    spec, prebuilt=PrebuiltArtifacts(ba=bas[spec.name])
                )
            replica.catch_up()
            leader_outcome = leader.query(case.query, options)
            replica_outcome = replica.query(case.query, options)
        return [
            ("leader", leader_outcome.contract_names,
             leader_outcome.maybe_names),
            ("replica", replica_outcome.contract_names,
             replica_outcome.maybe_names),
        ]

    # -- monitor cells ----------------------------------------------------------------

    def _monitor_trace(self, case, specs, mode) -> list[frozenset[str]]:
        """The deterministic event trace a monitor cell replays: fully
        determined by the case id and mode (string seeding hashes the
        seed bytes, so this is stable across processes — unlike
        ``hash()``).  ``monitor_unknown`` adds events guaranteed to be
        outside every contract vocabulary."""
        vocabulary: set[str] = set(case.query_formula().variables())
        for spec in specs:
            vocabulary |= spec.vocabulary
        pool = sorted(vocabulary)
        if mode == "monitor_unknown":
            pool += list(MONITOR_ALIEN_EVENTS)
        rng = random.Random(f"{case.case_id}|{mode}")
        return [
            frozenset(event for event in pool if rng.random() < 0.35)
            for _ in range(MONITOR_TRACE_LENGTH)
        ]

    def _monitor_transcripts(
        self, case, specs, bas, query_ba, mode, *, implementation
    ) -> frozenset[str]:
        """Per-contract verdict transcripts over the generated trace:
        one string per contract packing the status and watch-query
        satisfiability after every prefix (including the empty one),
        the violation index and the unknown-event count.  Computed from
        the object monitor (``implementation="object"``, the expected
        side) or the encoded fleet engine (``"encoded"``, the side
        under test) — invariant 13 says the two sets are identical."""
        trace = self._monitor_trace(case, specs, mode)
        transcripts = set()
        if implementation == "object":
            from ..broker.monitor import ContractMonitor, MonitorStatus

            for spec in specs:
                monitor = ContractMonitor(bas[spec.name], spec.vocabulary)
                statuses = [monitor.status is MonitorStatus.ACTIVE]
                watch = [monitor.can_still(query_ba)]
                for snapshot in trace:
                    statuses.append(
                        monitor.advance(snapshot) is MonitorStatus.ACTIVE
                    )
                    watch.append(monitor.can_still(query_ba))
                transcripts.add(_transcript(
                    spec.name, statuses, watch,
                    monitor.violation_index, monitor.unknown_events,
                ))
            return frozenset(transcripts)

        from ..stream.engine import FleetMonitor
        from ..stream.options import MonitorStatus

        fleet = FleetMonitor()
        for spec in specs:
            fleet.add_contract(
                spec.name, encode_automaton(bas[spec.name], spec.vocabulary)
            )
        fleet.register_watch("case-query", query_ba)
        statuses = {
            spec.name: [fleet.status(spec.name) is MonitorStatus.ACTIVE]
            for spec in specs
        }
        watch = {
            spec.name: [fleet.watch_satisfiable(spec.name, "case-query")]
            for spec in specs
        }
        for snapshot in trace:
            fleet.broadcast(snapshot)
            for spec in specs:
                statuses[spec.name].append(
                    fleet.status(spec.name) is MonitorStatus.ACTIVE
                )
                watch[spec.name].append(
                    fleet.watch_satisfiable(spec.name, "case-query")
                )
        for spec in specs:
            monitor = fleet.monitor(spec.name)
            transcripts.add(_transcript(
                spec.name, statuses[spec.name], watch[spec.name],
                monitor.violation_index, monitor.unknown_events,
            ))
        return frozenset(transcripts)

    def _check_config(
        self,
        case: CheckCase,
        specs,
        bas,
        expected: frozenset[str],
        config: StackConfig,
    ) -> list[Disagreement]:
        try:
            answers = self._run_config(case, specs, bas, config)
        except Exception as exc:  # the harness must survive stack crashes
            return [
                Disagreement(
                    case=case,
                    config_name=config.name,
                    label=config.mode,
                    kind="error",
                    expected=tuple(sorted(expected)),
                    got=(),
                    detail=f"{type(exc).__name__}: {exc}",
                )
            ]
        failures = []
        for label, permitted, maybe in answers:
            got = frozenset(permitted)
            maybe_set = frozenset(maybe)
            if config.exact:
                if got != expected or maybe_set:
                    failures.append(
                        Disagreement(
                            case=case,
                            config_name=config.name,
                            label=label,
                            kind="exact-mismatch",
                            expected=tuple(sorted(expected)),
                            got=tuple(sorted(got)),
                            maybe=tuple(sorted(maybe_set)),
                        )
                    )
            elif not (got <= expected <= got | maybe_set):
                failures.append(
                    Disagreement(
                        case=case,
                        config_name=config.name,
                        label=label,
                        kind="degradation-violation",
                        expected=tuple(sorted(expected)),
                        got=tuple(sorted(got)),
                        maybe=tuple(sorted(maybe_set)),
                    )
                )
        return failures

    # -- the full run -----------------------------------------------------------------

    def _still_fails(self, config: StackConfig):
        """The shrink predicate: does ``config`` still disagree with the
        oracle on a candidate case?"""

        def predicate(candidate: CheckCase) -> bool:
            try:
                return bool(self.check_case(candidate, (config,)))
            except ReproError:
                return False

        return predicate

    def _handle_failure(
        self, failure: Disagreement, original: CheckCase
    ) -> Disagreement:
        """Shrink a failing case, re-derive the disagreement on the
        shrunk case, and write the repro artifact."""
        from .artifacts import write_artifact

        case = failure.case
        if self.shrink_enabled:
            config = next(
                c for c in self.configs if c.name == failure.config_name
            )
            shrunk = shrink_case(case, self._still_fails(config))
            if shrunk is not case:
                try:
                    refreshed = self.check_case(shrunk, (config,))
                except ReproError:
                    refreshed = []
                if refreshed:
                    failure = refreshed[0]
        if self.artifact_dir is not None:
            path = write_artifact(
                self.artifact_dir,
                failure,
                seed=self.seed,
                original_case=original,
            )
            failure.artifact_path = str(path)
            self.metrics.inc("check.artifacts_written")
        return failure

    def run(self) -> ConformanceReport:
        report = ConformanceReport(
            seed=self.seed,
            cases_requested=self.cases_requested,
            config_names=tuple(c.name for c in self.configs),
        )
        started = time.perf_counter()
        for index in range(self.cases_requested):
            case = generate_case(self.seed, index, self.profile)
            case_started = time.perf_counter()
            try:
                failures = self.check_case(case)
            except (TranslationError, OracleLimitError):
                report.cases_skipped += 1
                self.metrics.inc("check.cases_skipped")
                continue
            report.cases_run += 1
            self.metrics.inc("check.cases")
            self.metrics.observe(
                "check.case_seconds", time.perf_counter() - case_started
            )
            for failure in failures:
                self.metrics.inc("check.disagreements")
                report.disagreements.append(
                    self._handle_failure(failure, case)
                )
        report.elapsed_seconds = time.perf_counter() - started
        return report
