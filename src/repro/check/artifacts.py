"""Standalone failure-repro artifacts and their replay entry point.

A conformance disagreement is only useful if someone else can reproduce
it without the fuzzing session: the artifact is one JSON file holding
the (shrunk) case, the original un-shrunk case, the failing
configuration, and both answers.  ``contract-broker check --replay
FILE`` (or :func:`replay_artifact`) re-runs exactly that case through
exactly that configuration against a freshly computed oracle verdict —
no seed, generator version, or fuzzing state required.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from ..errors import ReproError
from .cases import CheckCase
from .configs import configs_by_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import Disagreement

ARTIFACT_FORMAT = "repro-check-artifact/1"


def write_artifact(
    directory: str | Path,
    failure: "Disagreement",
    *,
    seed: int | None = None,
    original_case: CheckCase | None = None,
) -> Path:
    """Write one failure as a standalone JSON artifact; returns the
    path.  The filename carries the case id and configuration so a CI
    upload is self-describing."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    doc = {
        "format": ARTIFACT_FORMAT,
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "seed": seed,
        "config": failure.config_name,
        "label": failure.label,
        "kind": failure.kind,
        "expected": sorted(failure.expected),
        "got": sorted(failure.got),
        "maybe": sorted(failure.maybe),
        "detail": failure.detail,
        "case": failure.case.to_dict(),
    }
    if original_case is not None and original_case != failure.case:
        doc["original_case"] = original_case.to_dict()
    path = directory / (
        f"repro-{failure.case.case_id}-{failure.config_name}.json"
    )
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return path


def load_artifact(path: str | Path) -> dict:
    """Parse and validate an artifact file."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if doc.get("format") != ARTIFACT_FORMAT:
        raise ReproError(
            f"{path}: not a conformance artifact "
            f"(format={doc.get('format')!r})"
        )
    return doc


@dataclass
class ReplayResult:
    """The outcome of replaying one artifact."""

    path: str
    config_name: str
    case: CheckCase
    disagreements: list = field(default_factory=list)

    @property
    def reproduced(self) -> bool:
        """True when the stored failure still fails on the current
        code."""
        return bool(self.disagreements)

    def summary(self) -> str:
        if self.reproduced:
            return (
                f"replay {self.path}: FAILURE REPRODUCED on "
                f"{self.config_name} ({len(self.disagreements)} "
                f"disagreement(s))"
            )
        return (
            f"replay {self.path}: case passes on {self.config_name} "
            f"(failure not reproduced — fixed or environment-dependent)"
        )


def replay_artifact(path: str | Path) -> ReplayResult:
    """Re-run an artifact's case through its failing configuration."""
    from .runner import ConformanceRunner

    doc = load_artifact(path)
    case = CheckCase.from_dict(doc["case"])
    configs = configs_by_name([doc["config"]])
    runner = ConformanceRunner(configs=configs, shrink=False)
    disagreements = runner.check_case(case, configs)
    return ReplayResult(
        path=str(path),
        config_name=doc["config"],
        case=case,
        disagreements=disagreements,
    )
