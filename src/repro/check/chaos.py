"""Scripted chaos drills: fault injection against the recovery paths.

The conformance runner (:mod:`repro.check.runner`) checks that the
stack answers *correctly*; this module checks that it answers correctly
**after being hurt**.  Each drill arms the fault-injection registry
(:mod:`repro.core.faults`) at one seam, lets the failure happen, and
verifies the documented recovery property:

* ``persist-crash`` — a simulated crash while writing each snapshot
  artifact in turn; the directory must still load (fallback ladder /
  journal) and answer exactly like the database that was being saved;
* ``journal-truncation`` — a write-ahead journal holding a dozen
  acknowledged mutations is cut at byte boundaries; every cut must
  recover a prefix-consistent database that reconverges to the full
  state once the lost tail is re-applied (the kill-9 property);
* ``replication-truncation`` — the same byte-boundary cuts observed
  from the *read side*: a journal-shipping replica
  (:mod:`repro.dist.replica`) catching up over each torn journal must
  hold a consistent prefix, must never mutate the leader's file, and
  must reconverge through a snapshot re-sync once the leader heals and
  compacts (epoch bump);
* ``quarantine`` — a batch with poison pills (unparseable clauses, a
  state-budget blowout) must register every healthy spec, quarantine
  the pills with their exceptions, and recover them via
  ``db.quarantine.retry`` once the cause is fixed.

Drills are deterministic (no randomness, no timing dependence) so a
failure in CI reproduces locally from the same command:
``contract-broker chaos``.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..broker.contract import ContractSpec
from ..broker.database import BrokerConfig, ContractDatabase
from ..core.faults import FAULTS, SimulatedCrash
from ..ltl.parser import parse

#: Mutations in the journal the truncation drill sweeps.  ≥10 so the
#: sweep crosses many record boundaries, small enough to stay fast.
DEFAULT_MUTATIONS = 12


@dataclass
class DrillResult:
    """One drill's verdict."""

    name: str
    ok: bool
    detail: str
    checks: int = 0
    elapsed_seconds: float = 0.0

    def describe(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        return (
            f"[{verdict}] {self.name}: {self.detail} "
            f"({self.checks} check(s), {self.elapsed_seconds:.2f}s)"
        )


@dataclass
class ChaosReport:
    """The outcome of one chaos run."""

    results: list[DrillResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def summary(self) -> str:
        passed = sum(1 for r in self.results if r.ok)
        verdict = "OK" if self.ok else "FAILURES"
        return (
            f"chaos: {passed}/{len(self.results)} drill(s) passed "
            f"-> {verdict}"
        )

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "drills": [
                {
                    "name": r.name,
                    "ok": r.ok,
                    "detail": r.detail,
                    "checks": r.checks,
                    "elapsed_seconds": r.elapsed_seconds,
                }
                for r in self.results
            ],
        }


def _spec(i: int) -> ContractSpec:
    """A small deterministic spec; distinct vocabulary per contract so
    answers discriminate between recovery states."""
    return ContractSpec(
        name=f"chaos-{i}",
        clauses=(parse(f"G(a{i} -> F b{i})"),),
        attributes={"slot": i},
    )


def _names(db: ContractDatabase) -> list[str]:
    """Contract names in registration order (ids are dense and
    assigned in order, so a crash-recovered database's list is a prefix
    of the full one)."""
    contracts = sorted(db.contracts(), key=lambda c: c.contract_id)
    return [c.name for c in contracts]


def _drill(name, fn) -> DrillResult:
    started = time.perf_counter()
    FAULTS.reset()
    try:
        ok, detail, checks = fn()
    except Exception as exc:  # a drill crashing is itself a failure
        ok, detail, checks = False, f"{type(exc).__name__}: {exc}", 0
    finally:
        FAULTS.reset()
    return DrillResult(
        name=name,
        ok=ok,
        detail=detail,
        checks=checks,
        elapsed_seconds=time.perf_counter() - started,
    )


#: Snapshot writes per save: automata, seeds, projections, index, then
#: the manifest last.
_ARTIFACT_WRITES = 5


def _persist_crash_drill(contracts: int = 4):
    """Crash on every artifact write position in turn; the directory
    must stay loadable and answer identically."""
    from ..broker.persist import load_database, save_database

    checks = 0
    db = ContractDatabase(BrokerConfig())
    for i in range(contracts):
        db.register(_spec(i))
    baseline = _names(db)
    # one crash position per snapshot artifact (manifest is last)
    for position in range(1, _ARTIFACT_WRITES + 1):
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            directory = Path(tmp) / "db"
            save_database(db, directory)  # a good snapshot to fall back on
            db.dirty = True  # force the re-save below to actually write
            FAULTS.fail_at("persist.artifact_write", nth=position)
            try:
                save_database(db, directory)
                return False, (
                    f"injected crash at artifact write #{position} "
                    "did not fire"
                ), checks
            except SimulatedCrash:
                pass
            finally:
                FAULTS.reset()
            loaded = load_database(directory)
            checks += 1
            if _names(loaded) != baseline:
                return False, (
                    f"crash at artifact write #{position}: loaded "
                    f"{_names(loaded)} != {baseline}"
                ), checks
    return True, (
        f"crashed at each of {_ARTIFACT_WRITES} artifact-write "
        "positions; every directory loaded back identically"
    ), checks


def _journal_truncation_drill(mutations: int = DEFAULT_MUTATIONS,
                              stride: int = 1):
    """Cut the journal at byte boundaries; every cut must recover a
    prefix of the acknowledged history and reconverge when the lost
    tail is re-applied."""
    from ..broker.journal import JOURNAL_FILE, open_database

    checks = 0
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        source = Path(tmp) / "source"
        db = open_database(source)
        specs = [_spec(i) for i in range(mutations)]
        for spec in specs:
            db.register(spec)
        full = _names(db)
        raw = (source / JOURNAL_FILE).read_bytes()
        header_end = raw.index(b"\n") + 1
        reconverged: set[int] = set()
        for cut in range(header_end, len(raw) + 1, max(stride, 1)):
            trial = Path(tmp) / f"cut-{cut}"
            trial.mkdir()
            (trial / JOURNAL_FILE).write_bytes(raw[:cut])
            recovered = open_database(trial)
            got = _names(recovered)
            checks += 1
            # prefix consistency: exactly the first k acknowledged
            # mutations survive, for some k
            if got != full[: len(got)]:
                return False, (
                    f"cut at byte {cut}: {got} is not a prefix of {full}"
                ), checks
            # reconvergence: re-applying the lost tail restores the
            # full state.  The recovered database is a pure function of
            # how many complete records survived the cut, so one
            # reconvergence per distinct prefix length covers them all.
            if len(got) in reconverged:
                continue
            reconverged.add(len(got))
            for spec in specs[len(got):]:
                recovered.register(spec)
            if _names(recovered) != full:
                return False, (
                    f"cut at byte {cut}: reconverged to "
                    f"{_names(recovered)} != {full}"
                ), checks
    return True, (
        f"journal of {mutations} mutations cut at {checks} byte "
        "boundaries; every cut recovered a consistent prefix and "
        "reconverged"
    ), checks


def _replication_drill(mutations: int = DEFAULT_MUTATIONS,
                       stride: int = 1):
    """A replica catching up over a torn leader journal must hold a
    prefix of the acknowledged history, must never mutate the leader's
    file, and must reconverge to the full state once the leader heals
    and compacts (epoch bump → snapshot re-sync)."""
    from ..broker.journal import JOURNAL_FILE, open_database
    from ..broker.persist import save_database
    from ..dist.replica import Replica

    checks = 0
    cuts = 0
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        source = Path(tmp) / "source"
        db = open_database(source)
        specs = [_spec(i) for i in range(mutations)]
        for spec in specs:
            db.register(spec)
        full = _names(db)
        raw = (source / JOURNAL_FILE).read_bytes()
        header_end = raw.index(b"\n") + 1
        compacted: set[int] = set()
        for cut in range(header_end, len(raw) + 1, max(stride, 1)):
            cuts += 1
            trial = Path(tmp) / f"cut-{cut}"
            trial.mkdir()
            journal_path = trial / JOURNAL_FILE
            journal_path.write_bytes(raw[:cut])
            replica = Replica(trial)
            replica.poll()
            got = _names(replica.db)
            checks += 1
            # prefix consistency: mid-flush bytes are simply not
            # consumed, so the replica holds the first k mutations
            if got != full[: len(got)]:
                return False, (
                    f"cut at byte {cut}: replica state {got} is not a "
                    f"prefix of {full}"
                ), checks
            # a reader must never heal (truncate) the leader's file
            checks += 1
            if journal_path.read_bytes() != raw[:cut]:
                return False, (
                    f"cut at byte {cut}: the replica mutated the "
                    "leader's journal"
                ), checks
            # reconvergence is a pure function of the surviving prefix
            # length: exercise the leader-compacts path once per length
            if len(got) in compacted:
                continue
            compacted.add(len(got))
            # the leader restarts on the torn journal (healing it),
            # re-applies the lost mutations, and compacts: snapshot +
            # epoch bump — the replica's byte cursor is now meaningless
            leader = open_database(trial)
            for spec in specs[len(_names(leader)):]:
                leader.register(spec)
            leader.dirty = True
            save_database(leader, trial)
            report = replica.catch_up(timeout=30)
            checks += 2
            if not report.resynced:
                return False, (
                    f"cut at byte {cut}: the replica did not re-sync "
                    "from the snapshot after the epoch bump"
                ), checks
            if _names(replica.db) != full:
                return False, (
                    f"cut at byte {cut}: replica reconverged to "
                    f"{_names(replica.db)} != {full}"
                ), checks
    return True, (
        f"replica tailed {cuts} torn-journal cuts: every cut held a "
        "consistent prefix without touching the leader's file, and "
        f"every distinct prefix ({len(compacted)}) re-synced to the "
        "full state after the leader compacted"
    ), checks


def _quarantine_drill():
    """Poison pills must not take the batch down, and must be
    recoverable once the cause is fixed."""
    from ..broker.parallel import register_many

    db = ContractDatabase(BrokerConfig(state_budget=6))
    report = register_many(db, [
        ContractSpec(
            name="healthy-a", clauses=(parse("F a"),), attributes={}
        ),
        {"name": "unparseable", "clauses": ["G((("]},
        # a conjunction of eventualities whose BA blows the tiny budget
        ContractSpec(
            name="budget-blowout",
            clauses=tuple(parse(f"F e{i}") for i in range(6)),
            attributes={},
        ),
        ContractSpec(
            name="healthy-b", clauses=(parse("G !z"),), attributes={}
        ),
    ])
    checks = 1
    if report.registered != 2 or len(report.quarantined) != 2:
        return False, f"unexpected batch outcome: {report.summary()}", checks
    stages = sorted(q.stage for q in report.quarantined)
    if stages != ["parse", "translate"]:
        return False, f"unexpected quarantine stages: {stages}", checks
    # the healthy survivors answer queries (index consistent)
    outcome = db.query("F a")
    checks += 1
    if "healthy-a" not in outcome.contract_names:
        return False, "healthy survivor not queryable", checks
    # fix the cause (raise the budget) and retry the quarantine
    db.config = BrokerConfig(state_budget=512)
    recovered = db.quarantine.retry(db)
    checks += 1
    if recovered.registered != 1 or len(db.quarantine) != 1:
        return False, (
            f"retry recovered {recovered.registered}, "
            f"{len(db.quarantine)} left (expected 1 and 1)"
        ), checks
    return True, (
        "2 poison pills quarantined (parse, translate), 2 healthy "
        "specs registered and queryable, 1 recovered by retry"
    ), checks


def run_chaos_drills(
    mutations: int = DEFAULT_MUTATIONS,
    stride: int = 1,
) -> ChaosReport:
    """Run every drill; deterministic, self-contained, ~seconds."""
    report = ChaosReport()
    report.results.append(_drill("persist-crash", _persist_crash_drill))
    report.results.append(_drill(
        "journal-truncation",
        lambda: _journal_truncation_drill(mutations, stride),
    ))
    report.results.append(_drill(
        "replication-truncation",
        lambda: _replication_drill(mutations, stride),
    ))
    report.results.append(_drill("quarantine", _quarantine_drill))
    return report
