"""Scripted chaos drills: fault injection against the recovery paths.

The conformance runner (:mod:`repro.check.runner`) checks that the
stack answers *correctly*; this module checks that it answers correctly
**after being hurt**.  Each drill arms the fault-injection registry
(:mod:`repro.core.faults`) at one seam, lets the failure happen, and
verifies the documented recovery property:

* ``persist-crash`` — a simulated crash while writing each snapshot
  artifact in turn; the directory must still load (fallback ladder /
  journal) and answer exactly like the database that was being saved;
* ``journal-truncation`` — a write-ahead journal holding a dozen
  acknowledged mutations is cut at byte boundaries; every cut must
  recover a prefix-consistent database that reconverges to the full
  state once the lost tail is re-applied (the kill-9 property);
* ``replication-truncation`` — the same byte-boundary cuts observed
  from the *read side*: a journal-shipping replica
  (:mod:`repro.dist.replica`) catching up over each torn journal must
  hold a consistent prefix, must never mutate the leader's file, and
  must reconverge through a snapshot re-sync once the leader heals and
  compacts (epoch bump);
* ``quarantine`` — a batch with poison pills (unparseable clauses, a
  state-budget blowout) must register every healthy spec, quarantine
  the pills with their exceptions, and recover them via
  ``db.quarantine.retry`` once the cause is fixed;
* ``dist-flap`` — transient faults on the coordinator's ``dist.send``/
  ``dist.recv`` seams during a query storm: every flap must be
  absorbed by the RPC retry machinery (answers bit-for-bit equal to
  the fault-free cluster's), a fault window outlasting the retry
  budget must degrade *soundly* (``permitted ⊆ exact ⊆ permitted ∪
  maybe``), and once the seams heal and the breakers reset the
  answers must reconverge bit-for-bit;
* ``dist-partition`` — one shard partitioned off (every transport op
  against it raises): its circuit breaker must open, queries must
  degrade soundly while it is gone, and partition-then-heal must
  reconverge bit-for-bit;
* ``dist-failover`` — kill the leader of a journaled shard, promote
  its caught-up replica (epoch bump), fail the coordinator's address
  over, and re-answer a pinned query set **identically** to the
  pre-kill cluster — same global contract ids, same verdicts
  (invariant 16).

Drills are deterministic (no randomness, no timing dependence) so a
failure in CI reproduces locally from the same command:
``contract-broker chaos``.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..broker.contract import ContractSpec
from ..broker.database import BrokerConfig, ContractDatabase
from ..core.faults import FAULTS, SimulatedCrash
from ..ltl.parser import parse

#: Mutations in the journal the truncation drill sweeps.  ≥10 so the
#: sweep crosses many record boundaries, small enough to stay fast.
DEFAULT_MUTATIONS = 12


@dataclass
class DrillResult:
    """One drill's verdict."""

    name: str
    ok: bool
    detail: str
    checks: int = 0
    elapsed_seconds: float = 0.0

    def describe(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        return (
            f"[{verdict}] {self.name}: {self.detail} "
            f"({self.checks} check(s), {self.elapsed_seconds:.2f}s)"
        )


@dataclass
class ChaosReport:
    """The outcome of one chaos run."""

    results: list[DrillResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def summary(self) -> str:
        passed = sum(1 for r in self.results if r.ok)
        verdict = "OK" if self.ok else "FAILURES"
        return (
            f"chaos: {passed}/{len(self.results)} drill(s) passed "
            f"-> {verdict}"
        )

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "drills": [
                {
                    "name": r.name,
                    "ok": r.ok,
                    "detail": r.detail,
                    "checks": r.checks,
                    "elapsed_seconds": r.elapsed_seconds,
                }
                for r in self.results
            ],
        }


def _spec(i: int) -> ContractSpec:
    """A small deterministic spec; distinct vocabulary per contract so
    answers discriminate between recovery states."""
    return ContractSpec(
        name=f"chaos-{i}",
        clauses=(parse(f"G(a{i} -> F b{i})"),),
        attributes={"slot": i},
    )


def _names(db: ContractDatabase) -> list[str]:
    """Contract names in registration order (ids are dense and
    assigned in order, so a crash-recovered database's list is a prefix
    of the full one)."""
    contracts = sorted(db.contracts(), key=lambda c: c.contract_id)
    return [c.name for c in contracts]


def _drill(name, fn) -> DrillResult:
    started = time.perf_counter()
    FAULTS.reset()
    try:
        ok, detail, checks = fn()
    except Exception as exc:  # a drill crashing is itself a failure
        ok, detail, checks = False, f"{type(exc).__name__}: {exc}", 0
    finally:
        FAULTS.reset()
    return DrillResult(
        name=name,
        ok=ok,
        detail=detail,
        checks=checks,
        elapsed_seconds=time.perf_counter() - started,
    )


#: Snapshot writes per save: automata, seeds, projections, index, then
#: the manifest last.
_ARTIFACT_WRITES = 5


def _persist_crash_drill(contracts: int = 4):
    """Crash on every artifact write position in turn; the directory
    must stay loadable and answer identically."""
    from ..broker.persist import load_database, save_database

    checks = 0
    db = ContractDatabase(BrokerConfig())
    for i in range(contracts):
        db.register(_spec(i))
    baseline = _names(db)
    # one crash position per snapshot artifact (manifest is last)
    for position in range(1, _ARTIFACT_WRITES + 1):
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            directory = Path(tmp) / "db"
            save_database(db, directory)  # a good snapshot to fall back on
            db.dirty = True  # force the re-save below to actually write
            FAULTS.fail_at("persist.artifact_write", nth=position)
            try:
                save_database(db, directory)
                return False, (
                    f"injected crash at artifact write #{position} "
                    "did not fire"
                ), checks
            except SimulatedCrash:
                pass
            finally:
                FAULTS.reset()
            loaded = load_database(directory)
            checks += 1
            if _names(loaded) != baseline:
                return False, (
                    f"crash at artifact write #{position}: loaded "
                    f"{_names(loaded)} != {baseline}"
                ), checks
    return True, (
        f"crashed at each of {_ARTIFACT_WRITES} artifact-write "
        "positions; every directory loaded back identically"
    ), checks


def _journal_truncation_drill(mutations: int = DEFAULT_MUTATIONS,
                              stride: int = 1):
    """Cut the journal at byte boundaries; every cut must recover a
    prefix of the acknowledged history and reconverge when the lost
    tail is re-applied."""
    from ..broker.journal import JOURNAL_FILE, open_database

    checks = 0
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        source = Path(tmp) / "source"
        db = open_database(source)
        specs = [_spec(i) for i in range(mutations)]
        for spec in specs:
            db.register(spec)
        full = _names(db)
        raw = (source / JOURNAL_FILE).read_bytes()
        header_end = raw.index(b"\n") + 1
        reconverged: set[int] = set()
        for cut in range(header_end, len(raw) + 1, max(stride, 1)):
            trial = Path(tmp) / f"cut-{cut}"
            trial.mkdir()
            (trial / JOURNAL_FILE).write_bytes(raw[:cut])
            recovered = open_database(trial)
            got = _names(recovered)
            checks += 1
            # prefix consistency: exactly the first k acknowledged
            # mutations survive, for some k
            if got != full[: len(got)]:
                return False, (
                    f"cut at byte {cut}: {got} is not a prefix of {full}"
                ), checks
            # reconvergence: re-applying the lost tail restores the
            # full state.  The recovered database is a pure function of
            # how many complete records survived the cut, so one
            # reconvergence per distinct prefix length covers them all.
            if len(got) in reconverged:
                continue
            reconverged.add(len(got))
            for spec in specs[len(got):]:
                recovered.register(spec)
            if _names(recovered) != full:
                return False, (
                    f"cut at byte {cut}: reconverged to "
                    f"{_names(recovered)} != {full}"
                ), checks
    return True, (
        f"journal of {mutations} mutations cut at {checks} byte "
        "boundaries; every cut recovered a consistent prefix and "
        "reconverged"
    ), checks


def _replication_drill(mutations: int = DEFAULT_MUTATIONS,
                       stride: int = 1):
    """A replica catching up over a torn leader journal must hold a
    prefix of the acknowledged history, must never mutate the leader's
    file, and must reconverge to the full state once the leader heals
    and compacts (epoch bump → snapshot re-sync)."""
    from ..broker.journal import JOURNAL_FILE, open_database
    from ..broker.persist import save_database
    from ..dist.replica import Replica

    checks = 0
    cuts = 0
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        source = Path(tmp) / "source"
        db = open_database(source)
        specs = [_spec(i) for i in range(mutations)]
        for spec in specs:
            db.register(spec)
        full = _names(db)
        raw = (source / JOURNAL_FILE).read_bytes()
        header_end = raw.index(b"\n") + 1
        compacted: set[int] = set()
        for cut in range(header_end, len(raw) + 1, max(stride, 1)):
            cuts += 1
            trial = Path(tmp) / f"cut-{cut}"
            trial.mkdir()
            journal_path = trial / JOURNAL_FILE
            journal_path.write_bytes(raw[:cut])
            replica = Replica(trial)
            replica.poll()
            got = _names(replica.db)
            checks += 1
            # prefix consistency: mid-flush bytes are simply not
            # consumed, so the replica holds the first k mutations
            if got != full[: len(got)]:
                return False, (
                    f"cut at byte {cut}: replica state {got} is not a "
                    f"prefix of {full}"
                ), checks
            # a reader must never heal (truncate) the leader's file
            checks += 1
            if journal_path.read_bytes() != raw[:cut]:
                return False, (
                    f"cut at byte {cut}: the replica mutated the "
                    "leader's journal"
                ), checks
            # reconvergence is a pure function of the surviving prefix
            # length: exercise the leader-compacts path once per length
            if len(got) in compacted:
                continue
            compacted.add(len(got))
            # the leader restarts on the torn journal (healing it),
            # re-applies the lost mutations, and compacts: snapshot +
            # epoch bump — the replica's byte cursor is now meaningless
            leader = open_database(trial)
            for spec in specs[len(_names(leader)):]:
                leader.register(spec)
            leader.dirty = True
            save_database(leader, trial)
            report = replica.catch_up(timeout=30)
            checks += 2
            if not report.resynced:
                return False, (
                    f"cut at byte {cut}: the replica did not re-sync "
                    "from the snapshot after the epoch bump"
                ), checks
            if _names(replica.db) != full:
                return False, (
                    f"cut at byte {cut}: replica reconverged to "
                    f"{_names(replica.db)} != {full}"
                ), checks
    return True, (
        f"replica tailed {cuts} torn-journal cuts: every cut held a "
        "consistent prefix without touching the leader's file, and "
        f"every distinct prefix ({len(compacted)}) re-synced to the "
        "full state after the leader compacted"
    ), checks


def _quarantine_drill():
    """Poison pills must not take the batch down, and must be
    recoverable once the cause is fixed."""
    from ..broker.parallel import register_many

    db = ContractDatabase(BrokerConfig(state_budget=6))
    report = register_many(db, [
        ContractSpec(
            name="healthy-a", clauses=(parse("F a"),), attributes={}
        ),
        {"name": "unparseable", "clauses": ["G((("]},
        # a conjunction of eventualities whose BA blows the tiny budget
        ContractSpec(
            name="budget-blowout",
            clauses=tuple(parse(f"F e{i}") for i in range(6)),
            attributes={},
        ),
        ContractSpec(
            name="healthy-b", clauses=(parse("G !z"),), attributes={}
        ),
    ])
    checks = 1
    if report.registered != 2 or len(report.quarantined) != 2:
        return False, f"unexpected batch outcome: {report.summary()}", checks
    stages = sorted(q.stage for q in report.quarantined)
    if stages != ["parse", "translate"]:
        return False, f"unexpected quarantine stages: {stages}", checks
    # the healthy survivors answer queries (index consistent)
    outcome = db.query("F a")
    checks += 1
    if "healthy-a" not in outcome.contract_names:
        return False, "healthy survivor not queryable", checks
    # fix the cause (raise the budget) and retry the quarantine
    db.config = BrokerConfig(state_budget=512)
    recovered = db.quarantine.retry(db)
    checks += 1
    if recovered.registered != 1 or len(db.quarantine) != 1:
        return False, (
            f"retry recovered {recovered.registered}, "
            f"{len(db.quarantine)} left (expected 1 and 1)"
        ), checks
    return True, (
        "2 poison pills quarantined (parse, translate), 2 healthy "
        "specs registered and queryable, 1 recovered by retry"
    ), checks


#: A fast, still-jittered retry schedule for the network drills (the
#: real default waits tens of milliseconds per retry — pointless
#: against an injected fault).
_DRILL_RETRY_KW = dict(
    max_retries=2, base_seconds=0.002, cap_seconds=0.01,
)

#: Contracts per network drill — enough to land on every shard of a
#: 3-shard cluster.
_DIST_CONTRACTS = 9


def _answer(outcome) -> tuple:
    """The comparable part of a query outcome: the answer itself (ids,
    names, maybes, per-contract verdicts) minus the timing noise."""
    return (
        outcome.contract_ids,
        outcome.contract_names,
        outcome.maybe_ids,
        outcome.maybe_names,
        {cid: v.value for cid, v in outcome.verdicts.items()},
    )


def _sound(exact_ids: set, outcome) -> bool:
    """The degradation invariant: ``permitted ⊆ exact ⊆ permitted ∪
    maybe`` (invariant 8, applied across the network)."""
    permitted = set(outcome.contract_ids)
    maybe = set(outcome.maybe_ids)
    return permitted <= exact_ids and exact_ids <= permitted | maybe


def _dist_queries(n: int = 3):
    """Discriminating pinned queries: ``F ai & G !bi`` violates exactly
    contract ``chaos-i`` (which obliges ``bi`` after ``ai``), so every
    query's exact answer excludes precisely one contract."""
    return [f"F a{i} & G !b{i}" for i in range(0, _DIST_CONTRACTS, n)]


def _dist_flap_drill():
    """Transient send/recv faults are absorbed by retries (bit-for-bit
    answers); a fault window past the retry budget degrades soundly;
    healed seams + reset breakers reconverge bit-for-bit."""
    from ..core.retry import BackoffPolicy
    from ..dist.cluster import LocalCluster

    checks = 0
    queries = _dist_queries()
    with LocalCluster(3) as cluster:
        with cluster.database(
            retry=BackoffPolicy(**_DRILL_RETRY_KW),
            breaker_reset_seconds=60.0,  # only reset_breakers() heals
        ) as db:
            for i in range(_DIST_CONTRACTS):
                db.register(_spec(i))
            baseline = [_answer(o) for o in db.query_many(queries)]
            exact = [set(b[0]) for b in baseline]

            # -- flap: each query sees two transient faults, within the
            # retry budget no matter which shards absorb them
            for round_no, seam in enumerate(("dist.send", "dist.recv")):
                for qi, query in enumerate(queries):
                    FAULTS.fail_at(seam, nth=1, times=2, exc=OSError("flap"))
                    outcome = db.query(query)
                    FAULTS.reset()
                    checks += 1
                    if _answer(outcome) != baseline[qi]:
                        return False, (
                            f"{seam} flap on {query!r}: retried answer "
                            "diverged from the fault-free cluster"
                        ), checks
            retries = db.metrics.counter_value("dist.retries")
            checks += 1
            if retries < 2 * len(queries):
                return False, (
                    f"flap storm only recorded {retries} retry(ies); "
                    "the faults were not absorbed by the retry path"
                ), checks

            # -- a window outlasting every retry budget: sound
            # degradation, never a wrong answer
            FAULTS.fail_at("dist.send", nth=1, times=10**6,
                           exc=OSError("long outage"))
            degraded = db.query_many(queries)
            FAULTS.reset()
            for qi, outcome in enumerate(degraded):
                checks += 1
                if not _sound(exact[qi], outcome):
                    return False, (
                        f"long outage on {queries[qi]!r}: degraded "
                        "answer is unsound"
                    ), checks

            # -- heal + close the breakers the outage opened:
            # bit-for-bit reconvergence
            db.reset_breakers()
            healed = [_answer(o) for o in db.query_many(queries)]
            checks += 1
            if healed != baseline:
                return False, (
                    "healed cluster did not reconverge to the "
                    "fault-free answers"
                ), checks
    return True, (
        f"{2 * len(queries)} transient flaps absorbed bit-for-bit "
        f"({retries} retries), long outage degraded soundly, healed "
        "cluster reconverged"
    ), checks


def _dist_partition_drill():
    """Partition one shard off: its breaker opens, queries degrade
    soundly, and partition-then-heal reconverges bit-for-bit."""
    from ..core.retry import BackoffPolicy
    from ..dist.cluster import LocalCluster

    checks = 0
    queries = _dist_queries()
    victim = 1

    def partition(**context):
        if context.get("shard") == victim:
            raise OSError(f"shard {victim} is partitioned off")

    with LocalCluster(3) as cluster:
        with cluster.database(
            retry=BackoffPolicy(**_DRILL_RETRY_KW),
            breaker_reset_seconds=60.0,
        ) as db:
            for i in range(_DIST_CONTRACTS):
                db.register(_spec(i))
            baseline = [_answer(o) for o in db.query_many(queries)]
            exact = [set(b[0]) for b in baseline]

            for seam in ("dist.connect", "dist.send", "dist.recv"):
                FAULTS.fail_at(seam, nth=1, times=10**6, action=partition)
            degraded = db.query_many(queries)
            for qi, outcome in enumerate(degraded):
                checks += 1
                if not _sound(exact[qi], outcome):
                    return False, (
                        f"partition: {queries[qi]!r} degraded unsoundly"
                    ), checks
            # repeated queries against the partition trip the breaker:
            # the victim fails fast instead of burning its retry budget
            db.query_many(queries)
            checks += 1
            breaker = db.coordinator.health[victim]
            if breaker.state != "open":
                return False, (
                    f"shard {victim} breaker is {breaker.state!r} after "
                    "a sustained partition (expected 'open')"
                ), checks
            checks += 1
            if db.metrics.counter_value("dist.breaker_open") < 1:
                return False, "dist.breaker_open was never counted", checks

            FAULTS.reset()
            db.reset_breakers()
            healed = [_answer(o) for o in db.query_many(queries)]
            checks += 1
            if healed != baseline:
                return False, (
                    "healed partition did not reconverge to the "
                    "fault-free answers"
                ), checks
    return True, (
        f"shard {victim} partitioned: sound degradation, breaker "
        "opened, heal reconverged bit-for-bit"
    ), checks


def _dist_failover_drill():
    """Kill the leader, promote its caught-up replica, fail the
    coordinator over: the pinned queries re-answer identically — same
    global ids, same verdicts (invariant 16)."""
    from ..core.retry import BackoffPolicy
    from ..dist.cluster import LocalCluster

    checks = 0
    queries = _dist_queries()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        with LocalCluster(2, directory=Path(tmp) / "cluster") as cluster:
            with cluster.database(
                retry=BackoffPolicy(**_DRILL_RETRY_KW),
            ) as db:
                for i in range(_DIST_CONTRACTS):
                    db.register(_spec(i))
                baseline = [_answer(o) for o in db.query_many(queries)]
                exact = [set(b[0]) for b in baseline]

                replica = cluster.replica(0)
                replica.catch_up()
                old_epoch = replica.cursor.epoch

                cluster.stop_shard(0)  # the leader dies
                degraded = db.query_many(queries)
                for qi, outcome in enumerate(degraded):
                    checks += 1
                    if not _sound(exact[qi], outcome):
                        return False, (
                            f"dead leader: {queries[qi]!r} degraded "
                            "unsoundly"
                        ), checks

                promotion = replica.promote(Path(tmp) / "promoted")
                checks += 1
                if promotion.epoch <= old_epoch:
                    return False, (
                        f"promotion kept epoch {promotion.epoch} "
                        f"(leader was at {old_epoch}); siblings would "
                        "not resync"
                    ), checks
                address = cluster.restart_shard(0, db=replica.db)
                db.fail_over(0, address)

                recovered = [_answer(o) for o in db.query_many(queries)]
                checks += 1
                if recovered != baseline:
                    return False, (
                        "failed-over cluster did not re-answer the "
                        "pinned queries identically"
                    ), checks
                checks += 1
                if db.metrics.counter_value("dist.failovers") != 1:
                    return False, "dist.failovers was not counted", checks
    return True, (
        f"leader killed, replica promoted to epoch {promotion.epoch}, "
        f"{len(queries)} pinned queries re-answered identically after "
        "failover"
    ), checks


#: Every drill by name, in run order.
DRILLS = {
    "persist-crash": lambda mutations, stride: _persist_crash_drill(),
    "journal-truncation": (
        lambda mutations, stride: _journal_truncation_drill(
            mutations, stride
        )
    ),
    "replication-truncation": (
        lambda mutations, stride: _replication_drill(mutations, stride)
    ),
    "quarantine": lambda mutations, stride: _quarantine_drill(),
    "dist-flap": lambda mutations, stride: _dist_flap_drill(),
    "dist-partition": lambda mutations, stride: _dist_partition_drill(),
    "dist-failover": lambda mutations, stride: _dist_failover_drill(),
}


def run_chaos_drills(
    mutations: int = DEFAULT_MUTATIONS,
    stride: int = 1,
    drills: "list[str] | None" = None,
) -> ChaosReport:
    """Run the named ``drills`` (default: all, in :data:`DRILLS` order);
    deterministic, self-contained, ~seconds."""
    if drills is None:
        selected = list(DRILLS)
    else:
        unknown = [name for name in drills if name not in DRILLS]
        if unknown:
            raise ValueError(
                f"unknown drill(s) {unknown}; available: {sorted(DRILLS)}"
            )
        selected = list(drills)
    report = ChaosReport()
    for name in selected:
        fn = DRILLS[name]
        report.results.append(_drill(
            name, lambda fn=fn: fn(mutations, stride)
        ))
    return report
