"""The configuration lattice the differential runner sweeps.

Every case runs through each :class:`StackConfig`; exact configurations
must reproduce the oracle's answer bit-for-bit, budgeted ones must
respect the degradation invariant ``permitted ⊆ exact ⊆ permitted ∪
maybe`` (docs/DEVELOPMENT.md invariant 8).

The lattice covers both deciders crossed with both index optimizations
(8 exact configurations — any single-layer bug breaks at least one cell
while the others pin the blame), two *encoded* configurations that run
each decider on the flat int/bitset encoding
(:mod:`repro.automata.encode`) and must agree with the oracle — and
therefore with their object-decider twins — bit-for-bit, two *planner*
configurations that let the cost-based query planner pick the pipeline
per query (plans change *time*, never *answers* — docs/DEVELOPMENT.md
invariant 14 — so these cells are exact), plus five
*mode* configurations that exercise the serving machinery around the
deciders: a cache-warm repeat
(compilation-cache reuse), parallel ``query_many`` (thread-pool fan-out
must be bit-identical to serial), a step-budgeted run under the MAYBE
degradation policy, a save→load round trip (snapshot persistence must
answer like the database that produced it), and a journal replay
(snapshot + write-ahead-journal tail recovery must answer like the
database whose mutations it replays).

Two *monitor* cells check the streaming side: every contract is run
over a deterministic generated event trace through both the object
:class:`~repro.broker.monitor.ContractMonitor` and the encoded
:class:`~repro.stream.engine.FleetMonitor`, and their per-prefix
verdict transcripts (status, watch-query satisfiability, violation
index, unknown-event count) must match character for character —
invariant 13.  ``monitor-unknown`` salts the trace with events outside
every vocabulary to pin the unknown-event accounting.

Four *distributed* cells close the lattice at 23: ``sharded`` registers
every contract through a 3-shard coordinator
(:mod:`repro.dist`) and the merged fan-out answer must match the
single-node oracle bit-for-bit, and ``replicated`` ships the leader's
write-ahead journal to a read replica across a mid-stream compaction
(epoch bump → snapshot re-sync) and both the leader's and the
caught-up replica's answers must match the oracle — invariant 15:
distribution changes placement, never answers.  ``flaky-network``
re-runs the sharded path with transient faults armed on the
coordinator's ``dist.send``/``dist.recv`` seams — the RPC retry
machinery must absorb every injected failure and still match the
oracle bit-for-bit — and ``failover`` kills the leader of a journaled
cluster, promotes its caught-up replica, fails the coordinator's
address over, and the re-answered query must still match the oracle —
invariant 16: a retried or failed-over query returns the same answer a
never-failed cluster would, or a sound degradation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..broker.database import BrokerConfig
from ..errors import ReproError

#: Step budget of the degraded configuration: small enough to trip on
#: the occasional hard case, large enough that most checks complete and
#: the exact-subset comparison still bites.
BUDGET_CONFIG_STEPS = 64


@dataclass(frozen=True)
class StackConfig:
    """One point of the lattice.

    ``mode`` selects how the query is executed:

    * ``"direct"`` — one plain ``db.query`` call;
    * ``"planner"`` — one ``db.query`` call with ``use_planner=True``:
      the cost model chooses the prefilter/projection pipeline per
      query, and the answer must still match the oracle bit-for-bit;
    * ``"cache_warm"`` — the same query twice on one database; both the
      cold and the warm answer are checked;
    * ``"parallel"`` — ``db.query_many`` with a thread pool;
    * ``"budget"`` — a deterministic step budget with ``MAYBE``
      degradation (the only non-exact configuration);
    * ``"roundtrip"`` — save the database to a snapshot, load it back,
      query the loaded copy;
    * ``"journal"`` — register half the contracts, snapshot, register
      the rest (which land only in the write-ahead journal), reopen the
      directory so the tail is replayed, query the recovered copy;
    * ``"monitor"`` — stream a deterministic generated event trace
      through the encoded fleet monitor; the expected answer is the
      object monitor's per-prefix verdict transcript on the same trace
      (the case query doubles as the watch query);
    * ``"monitor_unknown"`` — the same, with out-of-vocabulary events
      salted into the trace (exercises unknown-event accounting);
    * ``"sharded"`` — register through a 3-shard
      :class:`~repro.dist.cluster.LocalCluster` coordinator and query
      through the fan-out/merge path;
    * ``"replicated"`` — register against a journaled leader with a
      mid-stream snapshot+compaction, catch a journal-shipping replica
      up across the epoch bump, and check the leader's and the
      replica's answers;
    * ``"flaky_network"`` — the sharded path with transient faults
      armed on the coordinator's transport seams; retries must absorb
      them and the answer must still be exact;
    * ``"failover"`` — a journaled 2-shard cluster whose leader is
      killed mid-run: the caught-up replica is promoted (epoch bump)
      and the coordinator fails over to it; the re-answered query must
      still be exact.
    """

    name: str
    algorithm: str = "ndfs"
    use_prefilter: bool = True
    use_projections: bool = True
    use_encoded: bool = False
    mode: str = "direct"

    @property
    def exact(self) -> bool:
        """Whether this configuration must match the oracle exactly."""
        return self.mode != "budget"

    def broker_config(self) -> BrokerConfig:
        return BrokerConfig(
            permission_algorithm=self.algorithm,
            use_prefilter=self.use_prefilter,
            use_projections=self.use_projections,
            use_encoded=self.use_encoded,
        )


def _base_lattice() -> list[StackConfig]:
    out = []
    for algorithm in ("ndfs", "scc"):
        for use_prefilter in (False, True):
            for use_projections in (False, True):
                name = algorithm
                name += "+pf" if use_prefilter else ""
                name += "+proj" if use_projections else ""
                out.append(
                    StackConfig(
                        name=name,
                        algorithm=algorithm,
                        use_prefilter=use_prefilter,
                        use_projections=use_projections,
                    )
                )
    return out


def config_lattice() -> tuple[StackConfig, ...]:
    """The full default lattice (23 configurations)."""
    return tuple(
        _base_lattice()
        + [
            # the flat int/bitset deciders, with both index optimizations
            # on — bit-identical to their object twins by construction,
            # and this is where that claim is continuously re-proven
            StackConfig(name="ndfs-encoded", algorithm="ndfs",
                        use_encoded=True),
            StackConfig(name="scc-encoded", algorithm="scc",
                        use_encoded=True),
            # the cost-based planner picks the pipeline per query; its
            # choices may differ from every static cell above, but the
            # answer may not (invariant 14: plans change time, never
            # answers)
            StackConfig(name="ndfs-planner", algorithm="ndfs",
                        mode="planner"),
            StackConfig(name="scc-planner", algorithm="scc",
                        mode="planner"),
            StackConfig(name="cache-warm", mode="cache_warm"),
            StackConfig(name="parallel-x2", mode="parallel"),
            StackConfig(name="budget-maybe", mode="budget"),
            # roundtrip runs with the encoded deciders on, so the
            # persisted encoded.json artifact is continuously proven to
            # answer like the database that wrote it
            StackConfig(name="save-load", mode="roundtrip",
                        use_encoded=True),
            StackConfig(name="journal-replay", mode="journal"),
            # the encoded streaming monitor vs the object monitor on a
            # deterministic generated trace (invariant 13)
            StackConfig(name="monitor-stream", mode="monitor",
                        use_encoded=True),
            StackConfig(name="monitor-unknown", mode="monitor_unknown",
                        use_encoded=True),
            # the distributed deployment vs the single node (invariant
            # 15: distribution changes placement, never answers)
            StackConfig(name="sharded", mode="sharded"),
            StackConfig(name="replicated", mode="replicated"),
            # the distributed deployment *while failing* vs the single
            # node (invariant 16: a retried or failed-over query
            # returns the never-failed answer, or a sound degradation
            # — these exact cells pin the never-failed half)
            StackConfig(name="flaky-network", mode="flaky_network"),
            StackConfig(name="failover", mode="failover"),
        ]
    )


def configs_by_name(names: list[str] | None = None) -> tuple[StackConfig, ...]:
    """Resolve configuration names (``None`` = the whole lattice)."""
    lattice = config_lattice()
    if names is None:
        return lattice
    by_name = {config.name: config for config in lattice}
    unknown = [name for name in names if name not in by_name]
    if unknown:
        raise ReproError(
            f"unknown configuration(s) {unknown}; available: "
            f"{sorted(by_name)}"
        )
    return tuple(by_name[name] for name in names)
