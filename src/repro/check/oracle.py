"""An explicit-model permission oracle, independent of Algorithm 2.

:func:`repro.core.permission.permits` decides Definition 7 symbolically:
it walks the contract×query product over *label* pairs, using literal
compatibility, seed pruning and (in the broker) projection quotients.
This module re-decides the same question by brute force on the **concrete
snapshot alphabet**: every letter is an explicit subset of the relevant
events, every transition is expanded to the letters that satisfy its
label, and a simultaneous lasso is found by plain pairwise-reachability
enumeration.  None of the production machinery (compatibility contexts,
seeds, set-tries, projections, budgets) is involved, so an agreement
between the two is strong evidence and a disagreement is always a bug in
one of them.

Soundness of the formulation: a contract permits a query iff the
compatibility product has a reachable cycle visiting both a
contract-final and a query-final pair (§6.2.2).  Two label transitions
can be taken simultaneously iff some concrete snapshot satisfies both
labels and the query label cites only contract-vocabulary events
(Definition 7, condition 3); enumerating all snapshots over the union of
the vocabulary and the contract's label events makes that exact, since
events outside this set are constrained by no label the product can see.
The enumeration is *bounded* only by the explicit guards below — a lasso
exists iff one of length ≤ |product| does, so within the guards the
oracle is a complete decider, not an approximation.

Exponential in the alphabet by construction (2^|events| letters), hence
the ``max_events`` guard: the oracle is for conformance checking on
small vocabularies, never for serving.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Hashable

from ..automata.buchi import BuchiAutomaton
from ..errors import ReproError

Pair = tuple[Hashable, Hashable]

#: Largest event set the oracle will expand into an explicit alphabet.
DEFAULT_MAX_EVENTS = 10
#: Largest explicit product (pairs) the oracle will enumerate.
DEFAULT_MAX_PAIRS = 50_000


class OracleLimitError(ReproError):
    """Raised when a case exceeds the oracle's explicit-model bounds
    (too many events or too many reachable product pairs)."""


def _snapshots(events: frozenset[str]) -> list[frozenset[str]]:
    """Every concrete snapshot over ``events`` (the explicit alphabet)."""
    ordered = sorted(events)
    return [
        frozenset(combo)
        for combo in chain.from_iterable(
            combinations(ordered, size) for size in range(len(ordered) + 1)
        )
    ]


def oracle_permits(
    contract: BuchiAutomaton,
    query: BuchiAutomaton,
    vocabulary: frozenset[str] | None = None,
    *,
    max_events: int = DEFAULT_MAX_EVENTS,
    max_pairs: int = DEFAULT_MAX_PAIRS,
) -> bool:
    """Decide permission by explicit lasso enumeration.

    Args mirror :func:`repro.core.permission.permits`: ``vocabulary`` is
    the contract's event vocabulary (defaulting to the events on its
    labels).  Raises :class:`OracleLimitError` when the instance exceeds
    the explicit-model bounds instead of silently guessing.
    """
    if vocabulary is None:
        vocabulary = contract.events()
    # Events outside the vocabulary can still appear on contract labels
    # when the caller passes a narrower vocabulary than the automaton
    # uses (arbitrary test automata); they must be part of the alphabet
    # for the contract's own transitions to be expandable.
    alphabet_events = frozenset(vocabulary) | contract.events()
    if len(alphabet_events) > max_events:
        raise OracleLimitError(
            f"{len(alphabet_events)} events exceed the oracle's explicit "
            f"alphabet bound of {max_events}"
        )
    letters = _snapshots(alphabet_events)

    # Letter-level transition tables: state -> snapshot-indexed successor
    # sets.  A query transition additionally needs its label to cite only
    # vocabulary events (Definition 7, condition 3-i).
    def expand(ba: BuchiAutomaton, admissible_only: bool) -> dict:
        table: dict[Hashable, list[set[Hashable]]] = {}
        for state in ba.states:
            per_letter: list[set[Hashable]] = [set() for _ in letters]
            for label, dst in ba.successors(state):
                if admissible_only and not label.events() <= vocabulary:
                    continue
                for i, snap in enumerate(letters):
                    if label.satisfied_by(snap):
                        per_letter[i].add(dst)
            table[state] = per_letter
        return table

    contract_table = expand(contract, admissible_only=False)
    query_table = expand(query, admissible_only=True)

    # Reachable product pairs under simultaneous letters.
    start: Pair = (contract.initial, query.initial)
    successors: dict[Pair, frozenset[Pair]] = {}
    frontier = [start]
    seen = {start}
    while frontier:
        pair = frontier.pop()
        c_state, q_state = pair
        succ: set[Pair] = set()
        c_row = contract_table[c_state]
        q_row = query_table[q_state]
        for i in range(len(letters)):
            for c_dst in c_row[i]:
                for q_dst in q_row[i]:
                    succ.add((c_dst, q_dst))
        successors[pair] = frozenset(succ)
        if len(successors) > max_pairs:
            raise OracleLimitError(
                f"reachable product exceeds the oracle's bound of "
                f"{max_pairs} pairs"
            )
        for nxt in succ:
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)

    # Lasso enumeration: a simultaneous accepting lasso exists iff some
    # reachable contract-final pair x and query-final pair y lie on a
    # common cycle, i.e. x reaches y and y reaches x over non-empty
    # paths (x == y degenerates to a non-empty cycle through x).
    contract_finals = [p for p in successors if p[0] in contract.final]
    query_finals = {p for p in successors if p[1] in query.final}
    if not contract_finals or not query_finals:
        return False

    reach_plus_cache: dict[Pair, frozenset[Pair]] = {}

    def reach_plus(node: Pair) -> frozenset[Pair]:
        cached = reach_plus_cache.get(node)
        if cached is not None:
            return cached
        out: set[Pair] = set()
        stack = list(successors[node])
        while stack:
            cursor = stack.pop()
            if cursor in out:
                continue
            out.add(cursor)
            stack.extend(successors[cursor])
        result = frozenset(out)
        reach_plus_cache[node] = result
        return result

    for x in contract_finals:
        forward = reach_plus(x)
        for y in query_finals & forward:
            if x in reach_plus(y):
                return True
    return False
