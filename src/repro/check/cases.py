"""Self-contained conformance cases: serializable, replayable inputs.

A :class:`CheckCase` is everything one differential run needs — contract
specifications (clause texts + relational attributes), one temporal
query, and one attribute filter — expressed entirely in JSON-able
primitives so a failing case can be written to disk as a standalone
repro artifact and replayed later without the generator or its seed.

Formulas are stored as LTL *text* (``format_formula`` output, re-parsed
on materialization); attribute filters are stored as ``(attribute, op,
value)`` triples (:class:`FilterSpec`), the same wire shape the
relational condition AST itself serializes to
(:meth:`~repro.broker.relational.AttributeFilter.to_list`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..broker.contract import ContractSpec
from ..broker.relational import AttributeFilter
from ..ltl.ast import Formula
from ..ltl.parser import parse


@dataclass(frozen=True)
class FilterSpec:
    """A JSON-able description of an attribute filter.

    ``conditions`` is a tuple of ``(attribute, op, value)`` triples; the
    ``in`` operator takes a list value.  :meth:`build` materializes the
    equivalent :class:`~repro.broker.relational.AttributeFilter`.

    Since the relational layer's conditions became data
    (:class:`~repro.broker.relational.AttributeCondition`), this class
    is a thin adapter over ``AttributeFilter.from_list`` — kept so
    recorded case artifacts and call sites keep their shape.
    """

    conditions: tuple[tuple[str, str, Any], ...] = ()

    def build(self) -> AttributeFilter:
        # BrokerError (raised on an unknown operator) is a ReproError,
        # so callers' error contract is unchanged.
        return AttributeFilter.from_list(self.to_list())

    def to_list(self) -> list[list[Any]]:
        return [
            [attribute, op, list(value) if op == "in" else value]
            for attribute, op, value in self.conditions
        ]

    @classmethod
    def from_list(cls, items: list) -> "FilterSpec":
        return cls(
            tuple(
                (attribute, op, tuple(value) if op == "in" else value)
                for attribute, op, value in items
            )
        )

    def __str__(self) -> str:
        if not self.conditions:
            return "TRUE"
        return " AND ".join(
            f"{attribute} {op} {value!r}"
            for attribute, op, value in self.conditions
        )


@dataclass(frozen=True)
class ContractCase:
    """One contract of a case: clause texts plus relational attributes."""

    name: str
    clauses: tuple[str, ...]
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def spec(self) -> ContractSpec:
        return ContractSpec(
            name=self.name,
            clauses=tuple(parse(text) for text in self.clauses),
            attributes=dict(self.attributes),
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "clauses": list(self.clauses),
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "ContractCase":
        return cls(
            name=doc["name"],
            clauses=tuple(doc["clauses"]),
            attributes=dict(doc.get("attributes") or {}),
        )


@dataclass(frozen=True)
class CheckCase:
    """One complete differential-conformance input."""

    case_id: str
    contracts: tuple[ContractCase, ...]
    query: str
    filter: FilterSpec = FilterSpec()

    def specs(self) -> list[ContractSpec]:
        return [contract.spec() for contract in self.contracts]

    def query_formula(self) -> Formula:
        return parse(self.query)

    def to_dict(self) -> dict:
        return {
            "case_id": self.case_id,
            "contracts": [c.to_dict() for c in self.contracts],
            "query": self.query,
            "filter": self.filter.to_list(),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "CheckCase":
        return cls(
            case_id=doc["case_id"],
            contracts=tuple(
                ContractCase.from_dict(c) for c in doc["contracts"]
            ),
            query=doc["query"],
            filter=FilterSpec.from_list(doc.get("filter") or []),
        )

    def __str__(self) -> str:
        clauses = "; ".join(
            f"{c.name}:[{' && '.join(c.clauses)}]" for c in self.contracts
        )
        return (
            f"CheckCase({self.case_id}: query={self.query!r}, "
            f"filter={self.filter}, contracts={clauses})"
        )
