"""The unified query-execution options: one object for every knob.

Before 1.3.0 the broker's query surface had grown six divergent
keyword-argument lists (``query``, ``query_many``, ``query_planned``,
``permits_contract``, ``explain``, and the module-level
:func:`repro.broker.parallel.query_many`), none of which could express a
time bound.  :class:`QueryOptions` replaces them all: every public query
entry point now accepts one options object and funnels into the single
internal ``_query_compiled`` path, and the budget fields
(``deadline_seconds`` / ``step_budget``) give every query a well-defined
degraded answer instead of an unbounded Algorithm-2 run (the permission
problem is PSPACE-complete — Theorem 6).

Degradation semantics (:class:`Degradation`): a candidate whose check
exhausted its budget *survived the relational filter and the prefilter*,
so it is a legitimate "maybe" answer.  ``Degradation.MAYBE`` (default)
reports such candidates on ``QueryOutcome.maybe_ids`` with a
``TIMED_OUT`` / ``SKIPPED`` verdict; ``DROP`` records only the verdict;
``FAIL`` raises :class:`~repro.errors.QueryBudgetError`.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Mapping

from ..core.budget import DEFAULT_CHECK_INTERVAL
from .relational import MATCH_ALL, AttributeFilter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..automata.buchi import BuchiAutomaton
    from ..automata.encode import EncodedAutomaton
    from ..projection.store import ProjectionStore
    from .planner import QueryPlanner


class Degradation(enum.Enum):
    """What to do with candidates whose permission check ran out of
    budget (they passed the relational and prefilter stages, so the
    exact answer is unknown but plausible)."""

    #: report them as "maybe" candidates on the outcome (default)
    MAYBE = "maybe"
    #: exclude them from the answer; only the verdict map records them
    DROP = "drop"
    #: raise :class:`~repro.errors.QueryBudgetError` instead of degrading
    FAIL = "fail"


@dataclass(frozen=True)
class QueryOptions:
    """Everything one query evaluation can be configured with.

    Attributes:
        attribute_filter: relational pre-selection (§3's attribute
            filter); defaults to matching every contract.
        contract_ids: restrict evaluation to these contract ids (used by
            the single-contract surfaces; ``None`` = whole database).
        use_prefilter: engage the §4 index (``None`` = database config).
        use_projections: engage the §5 projections (``None`` = config).
        use_encoded: run permission checks on the flat int/bitset
            encoding (:mod:`repro.automata.encode`) instead of the
            object automata (``None`` = database config).  Verdicts,
            stats and budget behavior are identical either way; the
            object path remains as the fallback for contracts without an
            encoding.
        explain: extract a simultaneous-lasso witness per returned
            contract.
        use_planner: let a :class:`~repro.broker.planner.QueryPlanner`
            choose ``use_prefilter``/``use_projections``/``stage_order``
            per query (cost-based on the database's statistics).
        planner: the planner instance ``use_planner`` consults
            (``None`` = a default-constructed one).
        stage_order: relative order of the relational and prefilter
            stages — ``"attr_first"`` (default) runs the attribute
            filter before the index, ``"prefilter_first"`` evaluates the
            pruning condition first and filters only the survivors.
            Orders never change answers, only time (the candidate set is
            the same intersection either way); normally set by the
            planner rather than by hand.  ``None`` = ``"attr_first"``.
        deadline_seconds: wall-clock budget for the whole evaluation
            (prefilter + selection + permission + witnesses), measured
            from the moment the compiled query starts evaluating.
            Translation is bounded separately by the translator's state
            budget.  ``None`` = unbounded.
        contract_deadline_seconds: additional per-candidate wall-clock
            cap; each check gets the tighter of this and the query
            deadline.  ``None`` = query deadline only.
        step_budget: per-candidate cap on permission-search steps (pairs
            visited + nested-cycle nodes); deterministic, unlike the
            wall-clock deadlines.  ``None`` = unbounded.
        budget_check_interval: search steps between wall-clock reads.
        degradation: policy for budget-exhausted candidates.
        workers: thread-pool width for per-candidate permission checks
            in batched evaluation (``query_many``); ``1`` = serial.
    """

    attribute_filter: AttributeFilter = MATCH_ALL
    contract_ids: tuple[int, ...] | None = None
    use_prefilter: bool | None = None
    use_projections: bool | None = None
    use_encoded: bool | None = None
    explain: bool = False
    use_planner: bool = False
    planner: "QueryPlanner | None" = None
    stage_order: str | None = None
    deadline_seconds: float | None = None
    contract_deadline_seconds: float | None = None
    step_budget: int | None = None
    budget_check_interval: int = DEFAULT_CHECK_INTERVAL
    degradation: Degradation = Degradation.MAYBE
    workers: int = 1

    def __post_init__(self) -> None:
        if self.stage_order not in (None, "attr_first", "prefilter_first"):
            raise ValueError(
                f"stage_order must be None, 'attr_first' or "
                f"'prefilter_first', got {self.stage_order!r}"
            )
        for name in ("deadline_seconds", "contract_deadline_seconds"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.step_budget is not None and self.step_budget < 1:
            raise ValueError(
                f"step_budget must be >= 1, got {self.step_budget}"
            )
        if self.budget_check_interval < 1:
            raise ValueError(
                f"budget_check_interval must be >= 1, "
                f"got {self.budget_check_interval}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    @property
    def budgeted(self) -> bool:
        """Whether any execution budget is configured."""
        return (
            self.deadline_seconds is not None
            or self.contract_deadline_seconds is not None
            or self.step_budget is not None
        )

    def evolve(self, **changes: Any) -> "QueryOptions":
        """A copy with the given fields replaced (``dataclasses.replace``
        spelled as a method for call-site brevity)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class PrebuiltArtifacts:
    """Derived per-contract artifacts a caller already holds.

    Registration normally translates the spec and precomputes seeds and
    projections; the persistence layer (and any caller that did the work
    elsewhere — a process pool, a previous session) passes this bundle to
    :meth:`~repro.broker.database.ContractDatabase.register` to skip the
    recomputation.  The caller is responsible for the artifacts actually
    matching the spec.
    """

    ba: "BuchiAutomaton | None" = None
    seeds: frozenset | None = None
    projections: "ProjectionStore | None" = None
    encoded: "EncodedAutomaton | None" = None


#: Legacy keyword names each deprecated surface accepted, mapped to the
#: QueryOptions field they populate (documented in the migration tables).
_LEGACY_QUERY_KWARGS = {
    "attribute_filter": "attribute_filter",
    "use_prefilter": "use_prefilter",
    "use_projections": "use_projections",
    "explain": "explain",
    "workers": "workers",
}


def coerce_query_options(
    surface: str,
    options: "QueryOptions | AttributeFilter | None",
    legacy: Mapping[str, Any],
    *,
    stacklevel: int = 3,
) -> QueryOptions:
    """Resolve a query entry point's arguments into one QueryOptions.

    The new calling convention passes a :class:`QueryOptions` (or
    nothing); the pre-1.3 convention passed an :class:`AttributeFilter`
    positionally plus per-call keyword toggles.  The legacy convention
    still works but emits a :class:`DeprecationWarning` naming the
    replacement, so downstream code migrates one call site at a time.
    """
    if legacy:
        unknown = set(legacy) - set(_LEGACY_QUERY_KWARGS)
        if unknown:
            raise TypeError(
                f"{surface}() got unexpected keyword arguments "
                f"{sorted(unknown)}; new-style calls configure "
                f"evaluation through QueryOptions"
            )
    if isinstance(options, AttributeFilter):
        if "attribute_filter" in legacy:
            raise TypeError(
                f"{surface}() got attribute_filter both positionally "
                "and by keyword"
            )
        legacy = {**legacy, "attribute_filter": options}
        options = None
    if legacy:
        if options is not None:
            raise TypeError(
                f"{surface}() mixes QueryOptions with legacy keyword "
                f"arguments {sorted(legacy)}; fold them into the options"
            )
        warnings.warn(
            f"passing {sorted(legacy)} to {surface}() is deprecated; "
            f"pass QueryOptions({', '.join(sorted(_LEGACY_QUERY_KWARGS[k] for k in legacy))}=...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        fields = {
            _LEGACY_QUERY_KWARGS[k]: v for k, v in legacy.items()
            if v is not None
        }
        return QueryOptions(**fields)
    if options is None:
        return QueryOptions()
    if not isinstance(options, QueryOptions):
        raise TypeError(
            f"{surface}() expected QueryOptions or AttributeFilter, "
            f"got {type(options).__name__}"
        )
    return options
