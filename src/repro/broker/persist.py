"""Persisting and reloading contract databases.

The paper's prototype modules exchange text files (§7.1); this module
provides the library equivalent: a database directory holding

* ``contracts.json`` — every contract's name, clause texts and
  relational attributes (the authoritative specification), plus the
  broker configuration it was registered under;
* ``automata.json`` — the translated contract BAs, so reloading skips
  the (dominant) LTL-to-BA translation cost.

The prefilter index, seed sets and projection partitions are *rebuilt*
on load: they are deterministic functions of the automata, and
rebuilding them is both cheaper than the original translation and
immune to format drift.  ``load_database`` verifies that every stored
automaton still matches its specification's vocabulary before trusting
it, and falls back to re-translation on any mismatch.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..automata.serialize import automaton_from_dict, automaton_to_dict
from ..errors import BrokerError
from ..ltl.parser import parse
from ..ltl.printer import format_formula
from .contract import ContractSpec
from .database import BrokerConfig, ContractDatabase

_CONTRACTS_FILE = "contracts.json"
_AUTOMATA_FILE = "automata.json"
_FORMAT_VERSION = 1


def save_database(db: ContractDatabase, directory: str | Path) -> Path:
    """Write ``db`` to ``directory`` (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    config = db.config
    contract_docs = []
    automata_docs = []
    for contract in sorted(db.contracts(), key=lambda c: c.contract_id):
        contract_docs.append({
            "name": contract.name,
            "clauses": [format_formula(c) for c in contract.spec.clauses],
            "attributes": dict(contract.attributes),
        })
        automata_docs.append(automaton_to_dict(contract.ba))

    manifest = {
        "format_version": _FORMAT_VERSION,
        "config": {
            "use_prefilter": config.use_prefilter,
            "use_projections": config.use_projections,
            "use_seeds": config.use_seeds,
            "prefilter_depth": config.prefilter_depth,
            "projection_subset_cap": config.projection_subset_cap,
            "permission_algorithm": config.permission_algorithm,
            "state_budget": config.state_budget,
        },
        "contracts": contract_docs,
    }
    (directory / _CONTRACTS_FILE).write_text(
        json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
    )
    (directory / _AUTOMATA_FILE).write_text(
        json.dumps(automata_docs, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return directory


def load_database(
    directory: str | Path,
    config: BrokerConfig | None = None,
) -> ContractDatabase:
    """Rebuild a database saved by :func:`save_database`.

    Args:
        directory: the saved database directory.
        config: optional configuration override; defaults to the one the
            database was saved with.
    """
    directory = Path(directory)
    contracts_path = directory / _CONTRACTS_FILE
    automata_path = directory / _AUTOMATA_FILE
    if not contracts_path.exists():
        raise BrokerError(f"{contracts_path} does not exist")

    try:
        manifest = json.loads(contracts_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BrokerError(f"malformed {contracts_path}: {exc}") from exc
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise BrokerError(
            f"unsupported database format: {manifest.get('format_version')!r}"
        )

    if config is None:
        saved = manifest.get("config", {})
        config = BrokerConfig(
            use_prefilter=saved.get("use_prefilter", True),
            use_projections=saved.get("use_projections", True),
            use_seeds=saved.get("use_seeds", True),
            prefilter_depth=saved.get("prefilter_depth", 2),
            projection_subset_cap=saved.get("projection_subset_cap", 2),
            permission_algorithm=saved.get("permission_algorithm", "ndfs"),
            state_budget=saved.get("state_budget", 60_000),
        )

    automata_docs = []
    if automata_path.exists():
        automata_docs = json.loads(automata_path.read_text(encoding="utf-8"))

    db = ContractDatabase(config)
    for i, doc in enumerate(manifest.get("contracts", [])):
        spec = ContractSpec(
            name=doc["name"],
            clauses=tuple(parse(text) for text in doc["clauses"]),
            attributes=doc.get("attributes") or {},
        )
        ba = None
        if i < len(automata_docs):
            candidate = automaton_from_dict(automata_docs[i])
            # Trust the stored automaton only if it cites no event the
            # specification does not (a stale or edited file would).
            if candidate.events() <= spec.vocabulary:
                ba = candidate
        db.register_spec(spec, prebuilt_ba=ba)
    return db
