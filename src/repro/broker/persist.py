"""Persisting and reloading contract databases (snapshot format v2).

The paper's prototype modules exchange text files (§7.1); this module
provides the library equivalent: a database directory holding

* ``contracts.json`` — the manifest: every contract's name, clause texts
  and relational attributes (the authoritative specification), the full
  broker configuration it was registered under, the format version, and
  a SHA-256 checksum per derived-artifact file;
* ``automata.json``    — the translated contract BAs, keyed by contract
  name (duplicate names hold a list in registration order);
* ``seeds.json``       — the §6.2.4 seed set per contract, as state ids
  of the stored (canonically numbered) automaton;
* ``encoded.json``     — the flat int/bitset encoding of each stored
  automaton (:mod:`repro.automata.encode`) the encoded deciders walk,
  in the same canonical numbering;
* ``projections.json`` — each contract's deduplicated bisimulation
  partitions and subset -> partition map (§5.2);
* ``index.json``       — the §4 prefilter set-trie with its contract
  sets, contract ids renumbered to dense save-order positions;
* ``stats.json``       — the planner's database statistics (attribute
  value histograms, cardinality aggregates).  Loading re-registers
  every contract, which rebuilds the statistics exactly; the artifact
  is a consistency check on that rebuild, never a substitute for it.

The §7.4 experiments show registration-side cost (translation, index
building, all-subsets partitioning) dominating query cost, so the v2
snapshot persists *all* derived artifacts: ``load_database`` restores a
fully indexed database in O(read) instead of O(rebuild).

Robustness model:

* every write goes through a temp file + atomic ``os.replace``, and the
  manifest is written last — a crash mid-save never clobbers a loadable
  snapshot (at worst the old manifest's checksums reject half-replaced
  artifacts and the loader rebuilds);
* every derived artifact is verified against its manifest checksum; a
  missing, corrupt, or mismatching artifact is *ignored* and the
  corresponding structures are rebuilt from the specifications —
  correctness never depends on snapshot integrity, only cold-start time
  does;
* stored automata are trusted per contract only if they cite no event
  outside the specification's vocabulary; any name miss or stale entry
  falls back to re-translation, with a warning recorded in the
  :class:`LoadReport` attached to the returned database
  (``db.load_report``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..automata.encode import EncodedAutomaton, encode_automaton
from ..automata.serialize import automaton_from_dict, automaton_to_dict
from ..core import faults
from ..errors import AutomatonError, BrokerError, IndexError_, ProjectionError
from ..index.prefilter import PrefilterIndex
from ..ltl.parser import parse
from ..ltl.printer import format_formula
from ..projection.store import ProjectionStore
from .contract import ContractSpec
from .database import BrokerConfig, ContractDatabase
from .options import PrebuiltArtifacts

_CONTRACTS_FILE = "contracts.json"
_AUTOMATA_FILE = "automata.json"
_SEEDS_FILE = "seeds.json"
_ENCODED_FILE = "encoded.json"
_PROJECTIONS_FILE = "projections.json"
_INDEX_FILE = "index.json"
_STATS_FILE = "stats.json"
_FORMAT_VERSION = 2


@dataclass
class LoadReport:
    """What :func:`load_database` restored versus rebuilt.

    Attached to the returned database as ``db.load_report``.  A fully
    successful snapshot restore has every ``*_restored`` counter equal to
    ``contracts``, ``index_restored`` true, and no warnings.
    """

    contracts: int = 0
    automata_restored: int = 0
    seeds_restored: int = 0
    encoded_restored: int = 0
    projections_restored: int = 0
    index_restored: bool = False
    #: true when ``stats.json`` agreed with the statistics rebuilt during
    #: registration (the rebuilt values are authoritative either way)
    stats_restored: bool = False
    #: names of contracts whose stored automaton was missing or stale and
    #: were re-translated from their clauses
    retranslated: list = field(default_factory=list)
    #: artifact files that failed SHA-256 verification (or were missing
    #: from the manifest's checksum table)
    checksum_failures: list = field(default_factory=list)
    warnings: list = field(default_factory=list)
    load_seconds: float = 0.0


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _atomic_write(path: Path, text: str) -> None:
    """Write via a temp file in the same directory + atomic rename, so a
    crash mid-write leaves the previous file intact.

    The temp file is fsync'd *before* the rename (otherwise the rename
    can land on disk ahead of the data it points to, and a power cut
    yields a zero-length "successfully replaced" file), and the
    directory is fsync'd *after* (so the rename itself is durable)."""
    faults.hit("persist.artifact_write", filename=path.name)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)


def _fsync_directory(directory: Path) -> None:
    """Best-effort directory fsync; platforms that cannot open
    directories skip it silently."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def _clean_stale_tmp(directory: Path) -> int:
    """Remove ``.*.tmp`` leftovers of a crashed prior save.  They are
    invisible to the loader (which only reads manifest-named files) but
    accumulate forever otherwise."""
    removed = 0
    if not directory.is_dir():
        return removed
    for stale in directory.glob(".*.tmp"):
        try:
            stale.unlink()
            removed += 1
        except OSError:  # pragma: no cover - raced or read-only
            pass
    return removed


def save_database(
    db: ContractDatabase,
    directory: str | Path,
    *,
    only_if_dirty: bool = False,
) -> Path:
    """Write ``db`` to ``directory`` (created if missing).

    With ``only_if_dirty=True`` the save is skipped when the database has
    not changed since its last save/load (``db.dirty`` is false) and the
    target already holds a manifest — the incremental path for periodic
    snapshotting.

    The save holds the database's write lock: the snapshot is a
    consistent point-in-time image, and — when a write-ahead journal is
    attached and co-located with ``directory`` — the journal compaction
    happens under the same critical section, so no acknowledged mutation
    can slip between "serialized into the snapshot" and "removed from
    the journal".
    """
    directory = Path(directory)
    if (
        only_if_dirty
        and not db.dirty
        and (directory / _CONTRACTS_FILE).exists()
    ):
        return directory
    directory.mkdir(parents=True, exist_ok=True)
    _clean_stale_tmp(directory)

    journal = db.journal
    compact_journal = (
        journal is not None
        and journal.path.parent.resolve() == directory.resolve()
    )

    with db.lock.write():
        return _save_locked(db, directory, journal if compact_journal else None)


def _save_locked(db: ContractDatabase, directory: Path, journal) -> Path:
    contracts = sorted(db.contracts(), key=lambda c: c.contract_id)
    # Contract ids restart from 0 on load, so every persisted id is the
    # contract's dense position in save order.
    id_map = {c.contract_id: i for i, c in enumerate(contracts)}

    contract_docs = []
    automata_docs: dict[str, list] = {}
    seed_docs: dict[str, list] = {}
    encoded_docs: dict[str, list] = {}
    projection_docs: dict[str, list] = {}
    for contract in contracts:
        contract_docs.append({
            "name": contract.name,
            "clauses": [format_formula(c) for c in contract.spec.clauses],
            "attributes": dict(contract.attributes),
        })
        # One numbering per contract keeps the stored automaton, its seed
        # set, its encoding and its partitions in the same dense-integer
        # state space.
        numbering = contract.ba.canonical_numbering()
        canonical_ba = contract.ba.map_states(numbering.__getitem__)
        automata_docs.setdefault(contract.name, []).append(
            automaton_to_dict(canonical_ba, canonicalize=False)
        )
        seed_docs.setdefault(contract.name, []).append(
            sorted(numbering[s] for s in contract.seeds)
        )
        # Re-encoded against the canonical numbering (the in-memory
        # encoding indexes the live automaton's states, which need not
        # be JSON-representable).
        encoded_docs.setdefault(contract.name, []).append(
            encode_automaton(canonical_ba, contract.vocabulary).to_dict()
        )
        projection_docs.setdefault(contract.name, []).append(
            contract.projections.to_dict(numbering)
            if contract.projections is not None
            else None
        )

    artifacts = {}
    payloads = [
        (_AUTOMATA_FILE, automata_docs),
        (_SEEDS_FILE, seed_docs),
        (_ENCODED_FILE, encoded_docs),
        (_PROJECTIONS_FILE, projection_docs),
        (_INDEX_FILE, db.index.to_dict(id_map)),
        (_STATS_FILE, db.statistics.to_dict()),
    ]
    for filename, payload in payloads:
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        artifacts[filename] = _sha256(text.encode("utf-8"))
        _atomic_write(directory / filename, text)

    new_epoch = journal.epoch + 1 if journal is not None else 0
    manifest = {
        "format_version": _FORMAT_VERSION,
        "config": {
            f.name: getattr(db.config, f.name)
            for f in dataclasses.fields(BrokerConfig)
        },
        "contracts": contract_docs,
        "artifacts": artifacts,
        # the epoch handshake with the co-located write-ahead journal
        # (see repro.broker.journal): a journal whose header epoch is
        # behind this value holds only records this snapshot subsumes
        "journal_epoch": new_epoch,
    }
    # The manifest lands last: a snapshot is only as new as its manifest,
    # and its checksums disown any artifact a crash left half-updated.
    _atomic_write(
        directory / _CONTRACTS_FILE, json.dumps(manifest, indent=2) + "\n"
    )
    if journal is not None:
        # only after the manifest durably holds every journaled
        # mutation may the journal forget them; a crash between the two
        # writes leaves a stale-epoch journal that the next open
        # discards instead of double-replaying
        journal.compact(new_epoch, db.config)
    db.dirty = False
    return directory


def _config_from_manifest(manifest: dict) -> BrokerConfig:
    saved = manifest.get("config", {})
    kwargs = {
        f.name: saved[f.name]
        for f in dataclasses.fields(BrokerConfig)
        if f.name in saved
    }
    return BrokerConfig(**kwargs)


def _read_artifact(
    directory: Path, filename: str, checksums: dict, report: LoadReport
):
    """The parsed artifact, or ``None`` (with the reason recorded on the
    report) when it is missing, unlisted, corrupt, or fails
    verification."""
    path = directory / filename
    if not path.exists():
        report.warnings.append(f"{filename}: missing; rebuilding")
        return None
    raw = path.read_bytes()
    expected = checksums.get(filename)
    if expected is None or _sha256(raw) != expected:
        report.checksum_failures.append(filename)
        report.warnings.append(
            f"{filename}: checksum verification failed; rebuilding"
        )
        return None
    try:
        return json.loads(raw.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        report.warnings.append(f"{filename}: malformed ({exc}); rebuilding")
        return None


def _nth(docs, name: str, position: int):
    """Entry ``position`` of the per-name list in an artifact dict
    (duplicate contract names store one entry per registration, in
    order); ``None`` on any shape mismatch."""
    if not isinstance(docs, dict):
        return None
    entries = docs.get(name)
    if not isinstance(entries, list) or position >= len(entries):
        return None
    return entries[position]


def _rebuild_index(db: ContractDatabase) -> None:
    """Discard the database's index and re-insert every contract (the
    fallback when the index snapshot is unusable)."""
    start = time.perf_counter()
    index = PrefilterIndex(depth=db.config.prefilter_depth)
    for contract in sorted(db.contracts(), key=lambda c: c.contract_id):
        index.add_contract(
            contract.contract_id, contract.ba, contract.vocabulary
        )
    db.adopt_index(index)
    db.registration_stats.prefilter_seconds += time.perf_counter() - start


def load_database(
    directory: str | Path,
    config: BrokerConfig | None = None,
) -> ContractDatabase:
    """Rebuild a database saved by :func:`save_database`.

    Restores every verified artifact — automata, seed sets, projection
    partitions, the prefilter index — and recomputes from the clause
    specifications whatever is missing or fails verification.  The
    returned database carries a :class:`LoadReport` as ``db.load_report``
    describing what was restored versus rebuilt.

    Args:
        directory: the saved database directory.
        config: optional configuration override; defaults to the one the
            database was saved with.  Overriding knobs that shape an
            artifact (``prefilter_depth``, ``projection_subset_cap``,
            ``use_projections``) makes the loader rebuild that artifact.
    """
    start = time.perf_counter()
    directory = Path(directory)
    contracts_path = directory / _CONTRACTS_FILE
    if not contracts_path.exists():
        raise BrokerError(f"{contracts_path} does not exist")

    try:
        manifest = json.loads(contracts_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BrokerError(f"malformed {contracts_path}: {exc}") from exc
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise BrokerError(
            f"unsupported database format: {manifest.get('format_version')!r}"
        )

    if config is None:
        config = _config_from_manifest(manifest)

    report = LoadReport()
    checksums = manifest.get("artifacts", {})
    if not isinstance(checksums, dict):
        checksums = {}
    automata_docs = _read_artifact(
        directory, _AUTOMATA_FILE, checksums, report
    )
    seeds_docs = _read_artifact(directory, _SEEDS_FILE, checksums, report)
    encoded_docs = _read_artifact(
        directory, _ENCODED_FILE, checksums, report
    )
    projection_docs = None
    if config.use_projections:
        projection_docs = _read_artifact(
            directory, _PROJECTIONS_FILE, checksums, report
        )
    index_doc = _read_artifact(directory, _INDEX_FILE, checksums, report)

    # Adopt the index snapshot wholesale only when its depth matches the
    # effective configuration; otherwise insert per contract as usual.
    try:
        restore_index = (
            index_doc is not None
            and int(index_doc["depth"]) == config.prefilter_depth
        )
    except (KeyError, TypeError, ValueError):
        restore_index = False

    db = ContractDatabase(config)
    retranslated: list = []
    positions: dict[str, int] = {}
    for doc in manifest.get("contracts", []):
        spec = ContractSpec(
            name=doc["name"],
            clauses=tuple(parse(text) for text in doc["clauses"]),
            attributes=doc.get("attributes") or {},
        )
        position = positions.get(spec.name, 0)
        positions[spec.name] = position + 1

        ba = None
        ba_doc = _nth(automata_docs, spec.name, position)
        if ba_doc is not None:
            try:
                candidate = automaton_from_dict(ba_doc)
            except (AutomatonError, TypeError, ValueError) as exc:
                report.warnings.append(
                    f"{spec.name!r}: stored automaton malformed ({exc}); "
                    "retranslating"
                )
            else:
                # Trust the stored automaton only if it cites no event the
                # specification does not (a stale or edited file would).
                if candidate.events() <= spec.vocabulary:
                    ba = candidate
                else:
                    report.warnings.append(
                        f"{spec.name!r}: stored automaton cites events "
                        "outside the specification; retranslating"
                    )
        elif automata_docs is not None:
            report.warnings.append(
                f"{spec.name!r}: no stored automaton; retranslating"
            )

        seeds = None
        encoded = None
        projections = None
        if ba is not None:
            report.automata_restored += 1
            seed_doc = _nth(seeds_docs, spec.name, position)
            if seed_doc is not None:
                try:
                    candidate_seeds = frozenset(int(s) for s in seed_doc)
                except (TypeError, ValueError):
                    candidate_seeds = None
                if (
                    candidate_seeds is not None
                    and candidate_seeds <= ba.states
                ):
                    seeds = candidate_seeds
                    report.seeds_restored += 1
                else:
                    report.warnings.append(
                        f"{spec.name!r}: stored seed set invalid; recomputing"
                    )
            enc_doc = _nth(encoded_docs, spec.name, position)
            if isinstance(enc_doc, dict):
                try:
                    candidate_enc = EncodedAutomaton.from_dict(ba, enc_doc)
                except AutomatonError as exc:
                    report.warnings.append(
                        f"{spec.name!r}: stored encoding invalid ({exc}); "
                        "re-encoding"
                    )
                else:
                    # The encoding's event index *is* the admissibility
                    # check of Definition 7, so a stale vocabulary would
                    # silently change verdicts — reject it.
                    if candidate_enc.events == tuple(sorted(spec.vocabulary)):
                        encoded = candidate_enc
                        report.encoded_restored += 1
                    else:
                        report.warnings.append(
                            f"{spec.name!r}: stored encoding vocabulary "
                            "differs from the specification; re-encoding"
                        )
            proj_doc = _nth(projection_docs, spec.name, position)
            if config.use_projections and isinstance(proj_doc, dict):
                if proj_doc.get("max_subset_size") == config.projection_subset_cap:
                    try:
                        projections = ProjectionStore.from_dict(ba, proj_doc)
                        report.projections_restored += 1
                    except ProjectionError as exc:
                        report.warnings.append(
                            f"{spec.name!r}: stored projections invalid "
                            f"({exc}); recomputing"
                        )
                else:
                    report.warnings.append(
                        f"{spec.name!r}: stored projection cap differs from "
                        "the configured one; recomputing"
                    )
        else:
            report.retranslated.append(spec.name)

        contract = db.register(
            spec,
            prebuilt=PrebuiltArtifacts(
                ba=ba, seeds=seeds, projections=projections, encoded=encoded
            ),
            update_index=not restore_index,
        )
        if restore_index and ba is None:
            retranslated.append(contract)

    if restore_index:
        try:
            index = PrefilterIndex.from_dict(index_doc)
        except IndexError_ as exc:
            report.warnings.append(
                f"{_INDEX_FILE}: invalid ({exc}); rebuilding"
            )
            _rebuild_index(db)
        else:
            expected_ids = frozenset(
                c.contract_id for c in db.contracts()
            )
            if index.universe != expected_ids:
                report.warnings.append(
                    f"{_INDEX_FILE}: contract ids do not match the "
                    "manifest; rebuilding"
                )
                _rebuild_index(db)
            else:
                # A re-translated BA may label differently from the
                # snapshot, so its index entries are refreshed in place.
                for contract in retranslated:
                    index.remove_contract(contract.contract_id)
                    index.add_contract(
                        contract.contract_id, contract.ba,
                        contract.vocabulary,
                    )
                db.adopt_index(index)
                report.index_restored = True

    # Registration above rebuilt the statistics from scratch; the stored
    # snapshot only corroborates them.  On disagreement the rebuilt
    # values win — plans must reflect the database actually loaded.
    stats_doc = _read_artifact(directory, _STATS_FILE, checksums, report)
    if stats_doc is not None:
        if db.statistics.matches_snapshot(stats_doc):
            report.stats_restored = True
        else:
            report.warnings.append(
                f"{_STATS_FILE}: disagrees with the statistics rebuilt "
                "from the specifications; keeping the rebuilt values"
            )

    report.contracts = len(db)
    report.load_seconds = time.perf_counter() - start
    db.load_report = report
    db.dirty = False
    return db
