"""Incrementally maintained database statistics for the cost-based planner.

The planner (:mod:`repro.broker.planner`) prices pipeline orders from
three quantities it must not compute per query: how selective an
attribute condition is, how big the stored automata are, and how much a
projection can shrink a permission check.  This module maintains all
three incrementally — :meth:`DatabaseStatistics.add_contract` /
:meth:`~DatabaseStatistics.remove_contract` run inside the database's
write lock on every register/deregister — so planning reads are O(plan),
never O(database).

Selectivity follows the textbook approach: per-attribute value
histograms (a :class:`collections.Counter` per attribute) answer
equality and membership conditions exactly and range conditions by
summing the matching histogram entries; conditions the statistics
cannot see through (legacy opaque predicates, ``contains`` on
collection-valued attributes) fall back to
:data:`DEFAULT_SELECTIVITY`.  Estimates steer plans only — plans change
time, never answers — so a stale or approximate histogram can never
produce a wrong query result.

The whole object serializes (:meth:`DatabaseStatistics.to_dict`) into
the snapshot's ``stats.json`` artifact; on load the database rebuilds
the statistics naturally by re-registering every contract, and the
artifact is used to *verify* the rebuild (checksum-style), falling back
to the rebuilt values with a warning when absent or inconsistent.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Any, Mapping

from .relational import AttributeCondition, AttributeFilter, apply_operator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .contract import Contract

#: Selectivity assumed for conditions the histograms cannot price:
#: opaque legacy predicates and ``contains`` membership on
#: collection-valued attributes.
DEFAULT_SELECTIVITY = 0.5

#: Pseudo-count credited to values the histogram has never seen, so an
#: unseen-but-plausible equality never estimates to exactly zero (the
#: plan should still expect *some* survivors).
_UNSEEN_PSEUDOCOUNT = 0.5

#: JSON-scalar types a histogram entry can persist; other values are
#: folded into the per-attribute ``other`` bucket on save.
_SCALAR_TYPES = (str, int, float, bool, type(None))


class _AttributeStat:
    """One attribute's histogram: how many contracts declare it, and the
    per-value counts (unhashable values land in ``other``)."""

    __slots__ = ("present", "values", "other")

    def __init__(self, present: int = 0, other: int = 0):
        self.present = present
        self.values: Counter = Counter()
        self.other = other

    @property
    def empty(self) -> bool:
        return self.present <= 0


class AttributeStatistics:
    """Per-attribute value histograms over the registered contracts."""

    def __init__(self) -> None:
        self._stats: dict[str, _AttributeStat] = {}
        self.contracts = 0

    # -- maintenance -----------------------------------------------------------------

    def add(self, attributes: Mapping[str, Any]) -> None:
        self.contracts += 1
        for attribute, value in attributes.items():
            stat = self._stats.setdefault(attribute, _AttributeStat())
            stat.present += 1
            try:
                stat.values[value] += 1
            except TypeError:
                stat.other += 1

    def remove(self, attributes: Mapping[str, Any]) -> None:
        self.contracts = max(self.contracts - 1, 0)
        for attribute, value in attributes.items():
            stat = self._stats.get(attribute)
            if stat is None:
                continue
            stat.present = max(stat.present - 1, 0)
            try:
                count = stat.values.get(value, 0)
            except TypeError:
                count = None
            if count is None:
                stat.other = max(stat.other - 1, 0)
            elif count > 1:
                stat.values[value] = count - 1
            elif count == 1:
                del stat.values[value]
            if stat.empty:
                del self._stats[attribute]

    # -- introspection ---------------------------------------------------------------

    def presence(self, attribute: str) -> int:
        """How many contracts declare ``attribute``."""
        stat = self._stats.get(attribute)
        return stat.present if stat is not None else 0

    def distinct(self, attribute: str) -> int:
        """Distinct histogram values of ``attribute`` (excludes the
        unhashable ``other`` bucket)."""
        stat = self._stats.get(attribute)
        return len(stat.values) if stat is not None else 0

    def attributes(self) -> list[str]:
        return sorted(self._stats)

    # -- estimation ------------------------------------------------------------------

    def estimate_condition(self, condition: AttributeCondition) -> float:
        """Estimated fraction of the database matching ``condition``,
        in ``[0, 1]``.  An empty database estimates 1.0 (nothing to
        prune, and the plan cost scales by N anyway)."""
        total = self.contracts
        if total <= 0:
            return 1.0
        if not condition.estimable:
            return DEFAULT_SELECTIVITY
        stat = self._stats.get(condition.attribute)
        if stat is None:
            # the attribute is never declared: only the pseudo-count
            # keeps the estimate off exactly zero
            return min(_UNSEEN_PSEUDOCOUNT / total, 1.0)
        op, value = condition.op, condition.value

        def eq_count(v: Any) -> float:
            try:
                return float(stat.values.get(v, 0))
            except TypeError:
                return 0.0

        if op == "==":
            hits = eq_count(value)
            if hits == 0.0:
                hits = min(_UNSEEN_PSEUDOCOUNT, stat.present)
                hits = max(hits, stat.other * DEFAULT_SELECTIVITY)
            return min(hits, stat.present) / total
        if op == "!=":
            return max(stat.present - eq_count(value), 0.0) / total
        if op in ("<", "<=", ">", ">="):
            hits = 0.0
            for v, count in stat.values.items():
                try:
                    if apply_operator(op, v, value):
                        hits += count
                except TypeError:
                    continue
            hits += stat.other * DEFAULT_SELECTIVITY
            hits = max(hits, min(_UNSEEN_PSEUDOCOUNT, stat.present))
            return min(hits, stat.present) / total
        if op == "in":
            hits = sum(eq_count(v) for v in value)
            hits = max(hits, min(_UNSEEN_PSEUDOCOUNT, stat.present))
            return min(hits, stat.present) / total
        # "contains" looks inside collection-valued attributes the
        # histogram keys cannot index
        return (stat.present / total) * DEFAULT_SELECTIVITY

    def estimate_filter(self, attribute_filter: AttributeFilter) -> float:
        """Estimated fraction surviving the whole conjunction
        (independence assumption: per-condition estimates multiply)."""
        selectivity = 1.0
        for condition in attribute_filter.conditions:
            selectivity *= self.estimate_condition(condition)
        return selectivity

    # -- persistence -----------------------------------------------------------------

    def to_dict(self) -> dict:
        attributes = {}
        for attribute in sorted(self._stats):
            stat = self._stats[attribute]
            values = []
            other = stat.other
            for value, count in stat.values.items():
                if isinstance(value, _SCALAR_TYPES):
                    values.append([value, count])
                else:
                    other += count
            values.sort(key=lambda pair: repr(pair[0]))
            attributes[attribute] = {
                "present": stat.present,
                "other": other,
                "values": values,
            }
        return {"contracts": self.contracts, "attributes": attributes}

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "AttributeStatistics":
        stats = cls()
        stats.contracts = int(doc.get("contracts", 0))
        for attribute, entry in dict(doc.get("attributes") or {}).items():
            stat = _AttributeStat(
                present=int(entry.get("present", 0)),
                other=int(entry.get("other", 0)),
            )
            for value, count in entry.get("values") or []:
                stat.values[value] = int(count)
            stats._stats[attribute] = stat
        return stats


class DatabaseStatistics:
    """Whole-database aggregates the planner prices plans from.

    Maintained incrementally under the database write lock; ``version``
    is bumped on every mutation, so cached plans (keyed by it) can never
    outlive the statistics that justified them.
    """

    def __init__(self) -> None:
        self.attributes = AttributeStatistics()
        self.contracts = 0
        self.total_states = 0
        self.total_transitions = 0
        self.projection_stores = 0
        self.total_min_blocks = 0
        self.version = 0

    # -- maintenance -----------------------------------------------------------------

    def add_contract(self, contract: "Contract") -> None:
        self.contracts += 1
        self.total_states += contract.ba.num_states
        self.total_transitions += contract.ba.num_transitions
        if contract.projections is not None:
            self.projection_stores += 1
            self.total_min_blocks += contract.projections.min_block_count
        self.attributes.add(contract.attributes)
        self.version += 1

    def remove_contract(self, contract: "Contract") -> None:
        self.contracts = max(self.contracts - 1, 0)
        self.total_states = max(
            self.total_states - contract.ba.num_states, 0
        )
        self.total_transitions = max(
            self.total_transitions - contract.ba.num_transitions, 0
        )
        if contract.projections is not None:
            self.projection_stores = max(self.projection_stores - 1, 0)
            self.total_min_blocks = max(
                self.total_min_blocks - contract.projections.min_block_count,
                0,
            )
        self.attributes.remove(contract.attributes)
        self.version += 1

    # -- aggregates ------------------------------------------------------------------

    @property
    def avg_states(self) -> float:
        """Mean automaton size of the stored contracts."""
        return self.total_states / self.contracts if self.contracts else 0.0

    @property
    def avg_min_blocks(self) -> float:
        """Mean best-case quotient size over contracts that carry a
        projection store (the full automaton size elsewhere)."""
        if not self.projection_stores:
            return self.avg_states
        return self.total_min_blocks / self.projection_stores

    @property
    def projection_coverage(self) -> float:
        """Fraction of contracts carrying a projection store."""
        if not self.contracts:
            return 0.0
        return self.projection_stores / self.contracts

    # -- persistence -----------------------------------------------------------------

    def to_dict(self) -> dict:
        """The JSON-able snapshot form (``version`` is deliberately
        excluded — it is a session-local mutation counter, meaningless
        across processes)."""
        return {
            "contracts": self.contracts,
            "total_states": self.total_states,
            "total_transitions": self.total_transitions,
            "projection_stores": self.projection_stores,
            "total_min_blocks": self.total_min_blocks,
            "attributes": self.attributes.to_dict(),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "DatabaseStatistics":
        stats = cls()
        stats.contracts = int(doc.get("contracts", 0))
        stats.total_states = int(doc.get("total_states", 0))
        stats.total_transitions = int(doc.get("total_transitions", 0))
        stats.projection_stores = int(doc.get("projection_stores", 0))
        stats.total_min_blocks = int(doc.get("total_min_blocks", 0))
        stats.attributes = AttributeStatistics.from_dict(
            doc.get("attributes") or {}
        )
        return stats

    def matches_snapshot(self, doc: Mapping[str, Any]) -> bool:
        """Whether a persisted snapshot agrees with these (rebuilt)
        statistics — the load-time consistency check."""
        return self.to_dict() == DatabaseStatistics.from_dict(doc).to_dict()
