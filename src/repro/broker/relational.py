"""The relational pre-selection substrate.

The paper scopes itself to the temporal side of the broker and assumes
"a traditional DBMS takes care of the features modeled as relational
attributes" (§1, point a): a complete system first narrows a much larger
database by attributes (route, date, price, ...) and only then checks
temporal permission.  This module is that substrate — a small in-memory
attribute store with typed conditions, enough to build the end-to-end
examples the paper's introduction motivates and to bound the contract
sets the temporal machinery sees.

Conditions are **data**, not code: an :class:`AttributeCondition` is an
``(attribute, op, value)`` triple, so a filter can be serialized
(:meth:`AttributeCondition.to_dict`), hashed into a plan-cache key
(:meth:`AttributeFilter.cache_key`) and cost-estimated from per-attribute
statistics (:mod:`repro.broker.stats`).  The pre-1.8 form — a bare
``Callable`` predicate plus a description string — still constructs (it
comes back as an :class:`OpaqueCondition` behind a
:class:`DeprecationWarning`), but such a condition is opaque: it cannot
be persisted, cached or estimated, only evaluated.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..errors import BrokerError

Predicate = Callable[[Any], bool]

#: Operators the condition AST understands.  ``in`` tests the attribute
#: against a collection of allowed values; ``contains`` tests a
#: collection-valued attribute for one member.
CONDITION_OPS = ("==", "!=", "<", "<=", ">", ">=", "in", "contains")


def apply_operator(op: str, actual: Any, value: Any) -> bool:
    """Evaluate one comparison operator (no TypeError shielding — the
    caller decides whether incomparable values mean "no match" or "skip")."""
    if op == "==":
        return actual == value
    if op == "!=":
        return actual != value
    if op == "<":
        return actual < value
    if op == "<=":
        return actual <= value
    if op == ">":
        return actual > value
    if op == ">=":
        return actual >= value
    if op == "in":
        return actual in value
    if op == "contains":
        return value in actual
    raise BrokerError(f"unknown condition operator {op!r}")


def _normalize_membership(value: Any) -> tuple:
    """A deterministic tuple of the allowed values of an ``in`` condition
    (sorted by repr so equal value *sets* produce equal cache keys)."""
    if isinstance(value, (str, bytes)):
        raise BrokerError(
            "the 'in' operator takes a collection of allowed values, "
            f"got the scalar {value!r}"
        )
    seen = []
    for v in value:
        if not any(v == s for s in seen):
            seen.append(v)
    return tuple(sorted(seen, key=repr))


def _is_legacy_call(args: tuple, kwargs: dict) -> bool:
    """Whether an ``AttributeCondition(...)`` call uses the pre-1.8
    ``(attribute, description, predicate)`` convention."""
    if "predicate" in kwargs or "description" in kwargs:
        return True
    return (
        len(args) == 3
        and callable(args[2])
        and args[1] not in CONDITION_OPS
    )


class AttributeCondition:
    """One attribute condition, e.g. ``price <= 500``, as data.

    ``op`` is one of :data:`CONDITION_OPS`; ``value`` is the comparison
    operand (a collection for ``in``, normalized to a deterministic
    tuple).  Missing attributes never match (a contract that does not
    declare a price cannot satisfy a price bound), and neither do
    incomparable values (``TypeError`` is a no-match, not an error).

    The legacy ``AttributeCondition(attribute, description, predicate)``
    construction still works: it warns and produces an
    :class:`OpaqueCondition`, which evaluates identically but cannot be
    serialized, plan-cached or cost-estimated.
    """

    __slots__ = ("attribute", "op", "value")

    def __new__(cls, *args: Any, **kwargs: Any):
        if cls is AttributeCondition and _is_legacy_call(args, kwargs):
            warnings.warn(
                "constructing AttributeCondition from a bare callable "
                "predicate is deprecated; use the (attribute, op, value) "
                "form or the eq/ne/lt/le/gt/ge/is_in/contains factories "
                "so the condition can be serialized and cost-estimated",
                DeprecationWarning,
                stacklevel=2,
            )
            return object.__new__(OpaqueCondition)
        return object.__new__(cls)

    def __init__(self, attribute: str, op: str, value: Any = None):
        if op not in CONDITION_OPS:
            raise BrokerError(
                f"unknown condition operator {op!r}; expected one of "
                f"{list(CONDITION_OPS)}"
            )
        if op == "in":
            value = _normalize_membership(value)
        self.attribute = attribute
        self.op = op
        self.value = value

    @property
    def estimable(self) -> bool:
        """Whether selectivity statistics can price this condition."""
        return True

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        if self.attribute not in attributes:
            return False
        try:
            return bool(
                apply_operator(self.op, attributes[self.attribute], self.value)
            )
        except TypeError:
            return False

    def cache_key(self):
        """A hashable, deterministic identity for plan/compilation cache
        keys (falls back to ``repr`` for unhashable operands)."""
        try:
            hash(self.value)
        except TypeError:
            return (self.attribute, self.op, repr(self.value))
        return (self.attribute, self.op, self.value)

    def to_dict(self) -> dict:
        """A JSON-able ``{"attribute", "op", "value"}`` document."""
        value = list(self.value) if self.op == "in" else self.value
        return {"attribute": self.attribute, "op": self.op, "value": value}

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "AttributeCondition":
        """Rebuild a condition from :meth:`to_dict` output (or any
        mapping with ``attribute``/``op``/``value`` keys)."""
        missing = {"attribute", "op"} - set(doc)
        if missing:
            raise BrokerError(
                f"attribute condition document is missing {sorted(missing)}"
            )
        return cls(doc["attribute"], doc["op"], doc.get("value"))

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, AttributeCondition):
            return NotImplemented
        if isinstance(other, OpaqueCondition):
            return False
        return (
            self.attribute == other.attribute
            and self.op == other.op
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash(self.cache_key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AttributeCondition({self.attribute!r}, {self.op!r}, "
                f"{self.value!r})")

    def __str__(self) -> str:
        return f"{self.attribute} {self.op} {self.value!r}"


class OpaqueCondition(AttributeCondition):
    """A legacy callable-predicate condition.

    Evaluates exactly like its pre-1.8 ancestor (missing attribute and
    ``TypeError`` are no-matches) but is opaque to the rest of the stack:
    ``estimable`` is False (the planner assumes a default selectivity),
    ``cache_key()`` is ``None`` (a filter containing one is never
    plan-cached) and ``to_dict()`` refuses (a closure cannot round-trip
    through JSON).
    """

    __slots__ = ("description", "predicate")

    def __init__(self, attribute: str, description: str = "",
                 predicate: Predicate | None = None):
        self.attribute = attribute
        self.op = "opaque"
        self.value = None
        self.description = description
        self.predicate = predicate if predicate is not None else (
            lambda _v: False
        )

    @property
    def estimable(self) -> bool:
        return False

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        if self.attribute not in attributes:
            return False
        try:
            return bool(self.predicate(attributes[self.attribute]))
        except TypeError:
            return False

    def cache_key(self):
        return None

    def to_dict(self) -> dict:
        raise BrokerError(
            f"cannot serialize the opaque condition {self}: it wraps a "
            "bare callable; rebuild it with the (attribute, op, value) AST"
        )

    def __eq__(self, other: Any) -> bool:
        return self is other

    __hash__ = object.__hash__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"OpaqueCondition({self.attribute!r}, "
                f"{self.description!r})")

    def __str__(self) -> str:
        return f"{self.attribute} {self.description}"


def eq(attribute: str, value: Any) -> AttributeCondition:
    """``attribute == value``."""
    return AttributeCondition(attribute, "==", value)


def ne(attribute: str, value: Any) -> AttributeCondition:
    """``attribute != value``."""
    return AttributeCondition(attribute, "!=", value)


def lt(attribute: str, value: Any) -> AttributeCondition:
    """``attribute < value``."""
    return AttributeCondition(attribute, "<", value)


def le(attribute: str, value: Any) -> AttributeCondition:
    """``attribute <= value``."""
    return AttributeCondition(attribute, "<=", value)


def gt(attribute: str, value: Any) -> AttributeCondition:
    """``attribute > value``."""
    return AttributeCondition(attribute, ">", value)


def ge(attribute: str, value: Any) -> AttributeCondition:
    """``attribute >= value``."""
    return AttributeCondition(attribute, ">=", value)


def is_in(attribute: str, values: Iterable[Any]) -> AttributeCondition:
    """``attribute in values``."""
    return AttributeCondition(attribute, "in", tuple(values))


def contains(attribute: str, value: Any) -> AttributeCondition:
    """``value in attribute`` (for collection-valued attributes)."""
    return AttributeCondition(attribute, "contains", value)


def condition_from_doc(doc: Any) -> AttributeCondition:
    """Build a condition from either document shape a query spec may
    use: a ``{"attribute", "op", "value"}`` mapping or an
    ``[attribute, op, value]`` triple."""
    if isinstance(doc, Mapping):
        return AttributeCondition.from_dict(doc)
    if isinstance(doc, Sequence) and not isinstance(doc, (str, bytes)):
        if len(doc) != 3:
            raise BrokerError(
                f"filter condition {doc!r} is not an "
                "[attribute, op, value] triple"
            )
        attribute, op, value = doc
        return AttributeCondition(attribute, op, value)
    raise BrokerError(
        f"cannot build an attribute condition from {doc!r}; expected a "
        "mapping or an [attribute, op, value] triple"
    )


@dataclass(frozen=True)
class AttributeFilter:
    """A conjunction of attribute conditions (a WHERE clause)."""

    conditions: tuple[AttributeCondition, ...] = ()

    @classmethod
    def where(cls, *conditions: AttributeCondition) -> "AttributeFilter":
        return cls(tuple(conditions))

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return all(c.matches(attributes) for c in self.conditions)

    @property
    def estimable(self) -> bool:
        """Whether every condition can be priced by the statistics."""
        return all(c.estimable for c in self.conditions)

    def cache_key(self):
        """A hashable identity for plan-cache keys, or ``None`` when any
        condition is opaque (a closure has no stable identity across
        calls, so such filters are planned fresh every time)."""
        keys = []
        for condition in self.conditions:
            key = condition.cache_key()
            if key is None:
                return None
            keys.append(key)
        return tuple(keys)

    def to_list(self) -> list[list[Any]]:
        """The JSON-able ``[[attribute, op, value], ...]`` form shared
        with the conformance harness's ``FilterSpec``."""
        return [
            [c.attribute, c.op, list(c.value) if c.op == "in" else c.value]
            for c in self.conditions
        ]

    @classmethod
    def from_list(cls, items: Iterable[Any]) -> "AttributeFilter":
        """Rebuild a filter from :meth:`to_list` output (triples and/or
        ``{"attribute", "op", "value"}`` mappings)."""
        return cls(tuple(condition_from_doc(item) for item in items))

    def __str__(self) -> str:
        if not self.conditions:
            return "TRUE"
        return " AND ".join(str(c) for c in self.conditions)


#: A filter that matches every contract.
MATCH_ALL = AttributeFilter()
