"""The relational pre-selection substrate.

The paper scopes itself to the temporal side of the broker and assumes
"a traditional DBMS takes care of the features modeled as relational
attributes" (§1, point a): a complete system first narrows a much larger
database by attributes (route, date, price, ...) and only then checks
temporal permission.  This module is that substrate — a small in-memory
attribute store with typed predicates, enough to build the end-to-end
examples the paper's introduction motivates and to bound the contract
sets the temporal machinery sees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

Predicate = Callable[[Any], bool]


@dataclass(frozen=True)
class AttributeCondition:
    """One attribute predicate, e.g. ``price <= 500``.

    Missing attributes never match (a contract that does not declare a
    price cannot satisfy a price bound).
    """

    attribute: str
    description: str
    predicate: Predicate

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        if self.attribute not in attributes:
            return False
        try:
            return bool(self.predicate(attributes[self.attribute]))
        except TypeError:
            return False

    def __str__(self) -> str:
        return f"{self.attribute} {self.description}"


def eq(attribute: str, value: Any) -> AttributeCondition:
    """``attribute == value``."""
    return AttributeCondition(attribute, f"== {value!r}", lambda v: v == value)


def ne(attribute: str, value: Any) -> AttributeCondition:
    """``attribute != value``."""
    return AttributeCondition(attribute, f"!= {value!r}", lambda v: v != value)


def lt(attribute: str, value: Any) -> AttributeCondition:
    """``attribute < value``."""
    return AttributeCondition(attribute, f"< {value!r}", lambda v: v < value)


def le(attribute: str, value: Any) -> AttributeCondition:
    """``attribute <= value``."""
    return AttributeCondition(attribute, f"<= {value!r}", lambda v: v <= value)


def gt(attribute: str, value: Any) -> AttributeCondition:
    """``attribute > value``."""
    return AttributeCondition(attribute, f"> {value!r}", lambda v: v > value)


def ge(attribute: str, value: Any) -> AttributeCondition:
    """``attribute >= value``."""
    return AttributeCondition(attribute, f">= {value!r}", lambda v: v >= value)


def is_in(attribute: str, values: Iterable[Any]) -> AttributeCondition:
    """``attribute in values``."""
    allowed = frozenset(values)
    return AttributeCondition(
        attribute, f"in {sorted(map(repr, allowed))}", lambda v: v in allowed
    )


def contains(attribute: str, value: Any) -> AttributeCondition:
    """``value in attribute`` (for collection-valued attributes)."""
    return AttributeCondition(
        attribute, f"contains {value!r}", lambda v: value in v
    )


@dataclass(frozen=True)
class AttributeFilter:
    """A conjunction of attribute conditions (a WHERE clause)."""

    conditions: tuple[AttributeCondition, ...] = ()

    @classmethod
    def where(cls, *conditions: AttributeCondition) -> "AttributeFilter":
        return cls(tuple(conditions))

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return all(c.matches(attributes) for c in self.conditions)

    def __str__(self) -> str:
        if not self.conditions:
            return "TRUE"
        return " AND ".join(str(c) for c in self.conditions)


#: A filter that matches every contract.
MATCH_ALL = AttributeFilter()
