"""Cost-based per-query planning.

The paper observes that its two techniques serve different query
profiles: prefiltering "is extremely effective for highly selective
complex queries" (§1) while the bisimulation projections "provide the
best results for simple queries that mention few events" (§1, §5.2).
A production broker can exploit that by *choosing per query* instead of
always paying both machineries' overheads.

:class:`QueryPlanner` prices three pipeline shapes against a
:class:`CostModel` fed by the database's incrementally maintained
statistics (:mod:`repro.broker.stats`):

* **scan** — attribute filter only, every survivor straight to the
  decider (the §4 index cannot prune, or pruning costs more than it
  saves);
* **attr-first** — attribute filter, then the §4 set-trie prefilter on
  the survivors (the classic order: the relational stage is cheap per
  row and shrinks the id set the condition intersects);
* **prefilter-first** — evaluate the pruning condition against the
  whole index first, then run the attribute filter only on the pruned
  survivors (wins when the filter is a wide conjunction and the
  condition is very selective).

Projections are priced orthogonally: engaged when the estimated
quotient shrink beats the per-candidate selection overhead (and the
query cites at most ``projection_literal_budget`` literals).  The
result is an inspectable :class:`QueryPlan` carrying per-stage
cardinality and cost estimates (:meth:`QueryPlan.explain`).

Without a database (or on an empty one) the planner falls back to the
pre-1.8 structural heuristic: prefilter unless the condition is
trivially ``TRUE``, projections within the literal budget.

The planner is advisory: queries run with
``QueryOptions(use_planner=True)``; the chosen plan toggles stages and
orders them but the stages themselves are sound, so **plans change
time, never answers** — a property the conformance lattice's
``*-planner`` cells re-prove against the oracle on every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..automata.buchi import BuchiAutomaton
from ..index.condition import CondTrue
from ..index.pruning import pruning_condition
from .relational import MATCH_ALL, AttributeFilter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .database import ContractDatabase
    from .options import QueryOptions

#: Stage orders a plan can choose (``QueryOptions.stage_order``).
ATTR_FIRST = "attr_first"
PREFILTER_FIRST = "prefilter_first"
STAGE_ORDERS = (ATTR_FIRST, PREFILTER_FIRST)


@dataclass(frozen=True)
class CostModel:
    """Abstract per-operation costs, in units of one attribute compare.

    The absolute scale is arbitrary — only the ratios steer plans.  The
    defaults were calibrated on the benchmark workloads
    (``benchmarks/bench_ablation_planner.py``); they only need to be
    right to within a factor of a few, because the pipelines they
    arbitrate differ by orders of magnitude on the profiles that matter.
    """

    #: evaluating one attribute condition against one contract
    attribute_compare: float = 1.0
    #: one primitive index operation (a set-trie walk, a subset-probe
    #: posting intersection, or one and/or node's set-algebra step) —
    #: multiplied by :meth:`PrefilterIndex.estimate_probe_cost`, which
    #: counts how many of these evaluating the pruning condition costs
    prefilter_probe: float = 6.0
    #: choosing the smallest applicable projection for one candidate
    selection: float = 2.0
    #: visiting one product-automaton state pair during the search
    state_pair: float = 2.0
    #: floor on the estimated automaton sizes (an empty estimate must
    #: still price a nonzero check)
    min_states: float = 2.0


@dataclass(frozen=True)
class PlannedStage:
    """One pipeline stage's cardinality and cost estimate."""

    name: str
    input_size: float
    output_size: float
    cost: float
    detail: str = ""

    def render(self) -> str:
        line = (
            f"{self.name:<18} in≈{self.input_size:8.1f}  "
            f"out≈{self.output_size:8.1f}  cost≈{self.cost:10.1f}"
        )
        if self.detail:
            line += f"  ({self.detail})"
        return line


@dataclass(frozen=True)
class QueryPlan:
    """The chosen evaluation strategy for one query.

    The first three fields keep the pre-1.8 positional shape
    ``(use_prefilter, use_projections, reason)``; the cost-based planner
    additionally records the stage order, the per-stage estimates and
    the total estimated cost.
    """

    use_prefilter: bool
    use_projections: bool
    reason: str
    order: str = ATTR_FIRST
    stages: tuple[PlannedStage, ...] = ()
    cost: float = 0.0
    source: str = "heuristic"

    def __str__(self) -> str:
        parts = []
        parts.append("prefilter" if self.use_prefilter else "no-prefilter")
        parts.append(
            "projections" if self.use_projections else "no-projections"
        )
        if self.use_prefilter and self.order != ATTR_FIRST:
            parts.append(self.order)
        return f"QueryPlan({', '.join(parts)}: {self.reason})"

    def explain(self) -> str:
        """A human-readable rendering: decisions, then the per-stage
        cardinality/cost table (cost-based plans only)."""
        lines = [
            f"plan: {'prefilter' if self.use_prefilter else 'no-prefilter'}"
            f", {'projections' if self.use_projections else 'no-projections'}"
            f", order={self.order}",
            f"source: {self.source}",
            f"reason: {self.reason}",
        ]
        if self.stages:
            lines.append(f"estimated cost: {self.cost:.1f} units")
            for stage in self.stages:
                lines.append("  " + stage.render())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """The JSON-able form (``contract-broker explain --json``)."""
        return {
            "use_prefilter": self.use_prefilter,
            "use_projections": self.use_projections,
            "order": self.order,
            "reason": self.reason,
            "source": self.source,
            "cost": self.cost,
            "stages": [
                {
                    "name": stage.name,
                    "input_size": stage.input_size,
                    "output_size": stage.output_size,
                    "cost": stage.cost,
                    "detail": stage.detail,
                }
                for stage in self.stages
            ],
        }


@dataclass(frozen=True)
class QueryPlanner:
    """Cost-based per-query optimizer.

    Attributes:
        projection_literal_budget: engage projections only for queries
            citing at most this many literals.  The default is
            deliberately permissive (selection is cheap and falls back
            to the full automaton); lower it only for databases whose
            projection stores are tiny relative to query width.
        cost_model: the abstract per-operation costs plans are priced
            with.
    """

    projection_literal_budget: int = 16
    cost_model: CostModel = CostModel()

    def plan(
        self,
        query_ba: BuchiAutomaton,
        condition=None,
        *,
        database: "ContractDatabase | None" = None,
        attribute_filter: AttributeFilter = MATCH_ALL,
    ) -> QueryPlan:
        """Choose a strategy for this query.

        ``condition`` lets callers that already hold the query's pruning
        condition (a :class:`~repro.broker.cache.CompiledQuery`) avoid
        recomputing it.  With a ``database`` the choice is cost-based on
        its statistics and index; without one (or on an empty database)
        it falls back to the structural heuristic.
        """
        if condition is None:
            condition = pruning_condition(query_ba)
        if database is None or len(database) == 0:
            return self._heuristic_plan(query_ba, condition)
        return self._cost_plan(
            query_ba, condition, database, attribute_filter
        )

    # -- the pre-1.8 structural fallback ---------------------------------------------

    def _heuristic_plan(self, query_ba: BuchiAutomaton,
                        condition) -> QueryPlan:
        prunable = not isinstance(condition, CondTrue)
        num_literals = len(query_ba.literals())
        project = num_literals <= self.projection_literal_budget

        if prunable and project:
            reason = (
                f"selective condition and only {num_literals} literals"
            )
        elif prunable:
            reason = (
                f"selective condition; {num_literals} literals exceed the "
                "projection budget"
            )
        elif project:
            reason = "condition cannot prune; query cites few literals"
        else:
            reason = "neither technique applicable; plain scan"
        return QueryPlan(
            use_prefilter=prunable,
            use_projections=project,
            reason=reason,
        )

    # -- the cost model --------------------------------------------------------------

    def _cost_plan(
        self,
        query_ba: BuchiAutomaton,
        condition,
        database: "ContractDatabase",
        attribute_filter: AttributeFilter,
    ) -> QueryPlan:
        m = self.cost_model
        stats = database.statistics
        total = float(stats.contracts)
        num_literals = len(query_ba.literals())
        query_states = max(float(query_ba.num_states), 1.0)

        n_conditions = len(attribute_filter.conditions)
        filter_selectivity = (
            stats.attributes.estimate_filter(attribute_filter)
            if n_conditions
            else 1.0
        )

        prunable = not isinstance(condition, CondTrue)
        if prunable:
            prefilter_selectivity = database.index.estimate_selectivity(
                condition
            )
            # priced per primitive operation: big pruning-condition trees
            # (and labels beyond the trie's depth cap, which fan out into
            # subset probes) make the index far more expensive than a
            # label count suggests
            prefilter_cost = (
                database.index.estimate_probe_cost(condition)
                * m.prefilter_probe
            )
        else:
            prefilter_selectivity = 1.0
            prefilter_cost = 0.0

        # per-candidate decider cost, with and without projections
        avg_states = max(stats.avg_states, m.min_states)
        check_full = avg_states * query_states * m.state_pair
        project = (
            num_literals <= self.projection_literal_budget
            and stats.projection_stores > 0
        )
        if project:
            # the best stored quotient is optimistic (selection depends
            # on the query's literals), so blend it with the full size
            proj_states = max(
                (stats.avg_min_blocks + avg_states) / 2.0, m.min_states
            )
            check_proj = (
                m.selection + proj_states * query_states * m.state_pair
            )
            project = check_proj < check_full
        check_cost = check_proj if project else check_full
        check_label = "projected" if project else "full automaton"

        filter_cost_per_row = n_conditions * m.attribute_compare
        after_filter = total * filter_selectivity
        after_both = total * filter_selectivity * prefilter_selectivity

        # the three pipeline shapes
        scan_cost = total * filter_cost_per_row + after_filter * check_cost
        attr_first_cost = (
            total * filter_cost_per_row
            + prefilter_cost
            + after_both * check_cost
        )
        prefilter_first_cost = (
            prefilter_cost
            + total * prefilter_selectivity * filter_cost_per_row
            + after_both * check_cost
        )

        choices = [
            ("scan", scan_cost),
            (ATTR_FIRST, attr_first_cost),
            (PREFILTER_FIRST, prefilter_first_cost),
        ]
        if not prunable:
            choices = choices[:1]
        elif not n_conditions:
            # with no attribute conditions the two orders coincide;
            # keep the canonical one
            choices = choices[:2]
        best, best_cost = min(choices, key=lambda pair: pair[1])

        use_prefilter = best != "scan"
        order = PREFILTER_FIRST if best == PREFILTER_FIRST else ATTR_FIRST
        stages = self._stages(
            best,
            total=total,
            filter_selectivity=filter_selectivity,
            filter_cost_per_row=filter_cost_per_row,
            prefilter_selectivity=prefilter_selectivity,
            prefilter_cost=prefilter_cost,
            check_cost=check_cost,
            check_label=check_label,
            n_conditions=n_conditions,
        )
        reason = self._reason(
            best, project, num_literals, filter_selectivity,
            prefilter_selectivity, prunable,
        )
        return QueryPlan(
            use_prefilter=use_prefilter,
            use_projections=project,
            reason=reason,
            order=order,
            stages=stages,
            cost=best_cost,
            source="cost",
        )

    @staticmethod
    def _stages(
        best: str,
        *,
        total: float,
        filter_selectivity: float,
        filter_cost_per_row: float,
        prefilter_selectivity: float,
        prefilter_cost: float,
        check_cost: float,
        check_label: str,
        n_conditions: int,
    ) -> tuple[PlannedStage, ...]:
        stages: list[PlannedStage] = []
        rows = total

        def attr_stage(rows_in: float) -> PlannedStage:
            return PlannedStage(
                name="attribute-filter",
                input_size=rows_in,
                output_size=rows_in * filter_selectivity,
                cost=rows_in * filter_cost_per_row,
                detail=(
                    f"{n_conditions} condition(s), "
                    f"selectivity≈{filter_selectivity:.3f}"
                ),
            )

        def prefilter_stage(rows_in: float) -> PlannedStage:
            return PlannedStage(
                name="prefilter",
                input_size=rows_in,
                output_size=rows_in * prefilter_selectivity,
                cost=prefilter_cost,
                detail=f"selectivity≈{prefilter_selectivity:.3f}",
            )

        if best == PREFILTER_FIRST:
            stage = prefilter_stage(rows)
            stages.append(stage)
            rows = stage.output_size
            stage = attr_stage(rows)
            stages.append(stage)
            rows = stage.output_size
        else:
            stage = attr_stage(rows)
            stages.append(stage)
            rows = stage.output_size
            if best == ATTR_FIRST:
                stage = prefilter_stage(rows)
                stages.append(stage)
                rows = stage.output_size
        stages.append(
            PlannedStage(
                name="permission-checks",
                input_size=rows,
                output_size=rows,
                cost=rows * check_cost,
                detail=f"{check_label}, ≈{check_cost:.1f}/candidate",
            )
        )
        return tuple(stages)

    @staticmethod
    def _reason(
        best: str,
        project: bool,
        num_literals: int,
        filter_selectivity: float,
        prefilter_selectivity: float,
        prunable: bool,
    ) -> str:
        if best == "scan":
            if not prunable:
                shape = "condition cannot prune; plain scan"
            else:
                shape = (
                    "index evaluation costs more than it saves "
                    f"(prefilter selectivity≈{prefilter_selectivity:.2f})"
                )
        elif best == PREFILTER_FIRST:
            shape = (
                "prune first "
                f"(prefilter selectivity≈{prefilter_selectivity:.2f}), "
                "then the attribute filter on the survivors"
            )
        else:
            shape = (
                f"attribute filter (selectivity≈{filter_selectivity:.2f}) "
                "then prefilter "
                f"(selectivity≈{prefilter_selectivity:.2f})"
            )
        proj = (
            f"projections on ({num_literals} literals)"
            if project
            else "projections off"
        )
        return f"{shape}; {proj}"

    # -- applying a plan -------------------------------------------------------------

    @staticmethod
    def resolve(options: "QueryOptions", plan: QueryPlan) -> "QueryOptions":
        """Fold a chosen plan into concrete execution options: the
        optimization toggles and stage order are set from the plan
        (overriding any explicit values — the planner was asked to
        decide) and ``use_planner`` is cleared, so the result is ready
        for the evaluation path."""
        return options.evolve(
            use_prefilter=plan.use_prefilter,
            use_projections=plan.use_projections,
            stage_order=plan.order,
            use_planner=False,
            planner=None,
        )

    def apply(
        self,
        options: "QueryOptions",
        query_ba: BuchiAutomaton,
        condition=None,
        *,
        database: "ContractDatabase | None" = None,
    ) -> "QueryOptions":
        """Plan and :meth:`resolve` in one step (the pre-1.8 surface)."""
        plan = self.plan(
            query_ba,
            condition=condition,
            database=database,
            attribute_filter=options.attribute_filter,
        )
        return self.resolve(options, plan)
