"""Per-query optimization planning.

The paper observes that its two techniques serve different query
profiles: prefiltering "is extremely effective for highly selective
complex queries" (§1) while the bisimulation projections "provide the
best results for simple queries that mention few events" (§1, §5.2).
A production broker can exploit that by *choosing per query* instead of
always paying both machineries' overheads.

:class:`QueryPlanner` inspects the translated query BA and produces a
:class:`QueryPlan`:

* **prefilter** is engaged unless the pruning condition is trivially
  ``TRUE`` (no pruning possible — evaluating it would only cost time);
* **projections** are engaged when the query cites at most
  ``projection_literal_budget`` literals.  Selection falls back to the
  full automaton gracefully, so the budget defaults high — disabling
  projections only pays off for queries so literal-heavy that even
  per-contract selection overhead cannot be recouped.

The planner is advisory: queries run with
``QueryOptions(use_planner=True)`` apply a plan through :meth:`apply`,
and the correctness of any plan is guaranteed by the soundness of the
underlying techniques (plans change time, never answers — a property
the tests assert).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..automata.buchi import BuchiAutomaton
from ..index.condition import CondTrue
from ..index.pruning import pruning_condition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .options import QueryOptions


@dataclass(frozen=True)
class QueryPlan:
    """The chosen evaluation strategy for one query."""

    use_prefilter: bool
    use_projections: bool
    reason: str

    def __str__(self) -> str:
        parts = []
        parts.append("prefilter" if self.use_prefilter else "no-prefilter")
        parts.append(
            "projections" if self.use_projections else "no-projections"
        )
        return f"QueryPlan({', '.join(parts)}: {self.reason})"


@dataclass(frozen=True)
class QueryPlanner:
    """Heuristic per-query optimizer.

    Attributes:
        projection_literal_budget: engage projections only for queries
            citing at most this many literals.  The default is
            deliberately permissive (selection is cheap and falls back
            to the full automaton); lower it only for databases whose
            projection stores are tiny relative to query width.
    """

    projection_literal_budget: int = 16

    def plan(self, query_ba: BuchiAutomaton,
             condition=None) -> QueryPlan:
        """Choose a strategy from the query BA's shape.

        ``condition`` lets callers that already hold the query's pruning
        condition (a :class:`~repro.broker.cache.CompiledQuery`) avoid
        recomputing it.
        """
        if condition is None:
            condition = pruning_condition(query_ba)
        prunable = not isinstance(condition, CondTrue)
        num_literals = len(query_ba.literals())
        project = num_literals <= self.projection_literal_budget

        if prunable and project:
            reason = (
                f"selective condition and only {num_literals} literals"
            )
        elif prunable:
            reason = (
                f"selective condition; {num_literals} literals exceed the "
                "projection budget"
            )
        elif project:
            reason = "condition cannot prune; query cites few literals"
        else:
            reason = "neither technique applicable; plain scan"
        return QueryPlan(
            use_prefilter=prunable,
            use_projections=project,
            reason=reason,
        )

    def apply(
        self,
        options: "QueryOptions",
        query_ba: BuchiAutomaton,
        condition=None,
    ) -> "QueryOptions":
        """Resolve ``use_planner`` into concrete optimization toggles.

        Returns a copy of ``options`` with ``use_prefilter`` and
        ``use_projections`` set from :meth:`plan` (overriding any
        explicit values — the planner was asked to decide) and
        ``use_planner`` cleared, so the result is ready for the
        evaluation path.
        """
        plan = self.plan(query_ba, condition=condition)
        return options.evolve(
            use_prefilter=plan.use_prefilter,
            use_projections=plan.use_projections,
            use_planner=False,
            planner=None,
        )
