"""Registered contracts: the broker's unit of storage.

A contract couples (a) ordinary relational attributes — price, route,
dates, whatever the application schema needs — with (b) a temporal
specification given as a set of declarative LTL clauses over the common
event vocabulary (§1, requirement iv).  At registration the broker
translates the clauses' conjunction to a Büchi automaton and precomputes
the auxiliary structures both optimizations need: the §6.2.4 seeds and
the §5 projection store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..automata.buchi import BuchiAutomaton
from ..automata.encode import EncodedAutomaton
from ..ltl.ast import Formula, conj
from ..projection.store import ProjectionStore


@dataclass(frozen=True)
class ContractSpec:
    """What a provider submits: a name, the declarative temporal clauses,
    and the relational attributes."""

    name: str
    clauses: tuple[Formula, ...]
    attributes: Mapping[str, Any] = field(default_factory=dict)

    @property
    def formula(self) -> Formula:
        """The conjunction of all clauses (§2, Example 5)."""
        return conj(self.clauses)

    @property
    def vocabulary(self) -> frozenset[str]:
        """The events the specification cites — the set ``V`` that the
        permission semantics restricts sequences to (Definition 4)."""
        out: set[str] = set()
        for clause in self.clauses:
            out |= clause.variables()
        return frozenset(out)


@dataclass
class Contract:
    """A registered contract with its precomputed artifacts.

    ``vocabulary`` is copied out of the spec at registration so the hot
    permission path does not re-derive it from the formula on every
    check.  ``encoded`` / ``encoded_seeds_mask`` are the flat int/bitset
    twins of ``ba`` / ``seeds`` (:mod:`repro.automata.encode`) the
    encoded deciders walk; ``None`` means the object path is the only
    one available for this contract.
    """

    contract_id: int
    spec: ContractSpec
    ba: BuchiAutomaton
    seeds: frozenset
    vocabulary: frozenset = frozenset()
    projections: ProjectionStore | None = None
    encoded: EncodedAutomaton | None = None
    encoded_seeds_mask: int | None = None

    def __post_init__(self) -> None:
        if not self.vocabulary:
            self.vocabulary = self.spec.vocabulary

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def attributes(self) -> Mapping[str, Any]:
        return self.spec.attributes

    def __str__(self) -> str:
        return (
            f"Contract#{self.contract_id}({self.name!r}, "
            f"{len(self.spec.clauses)} clauses, {self.ba.num_states} states)"
        )
