"""Comparing contracts by behavior.

A broker storing competing contracts can answer more than point queries:
*how do two contracts differ?*  At the automaton level the question has
a crisp reading — exhibit an event sequence one contract allows and the
other forbids.  This module provides:

* :func:`distinguishing_run` — a concrete run allowed by one contract
  and not by the other (restricted to their shared behavior where the
  vocabularies differ, every behavioral witness is over the first
  contract's events, mirroring Definition 1's projection discipline);
* :func:`behavioral_relation` — the summary verdict: equivalent, one
  side strictly more permissive, or incomparable, each direction backed
  by a witness run;
* :meth:`compare` on id pairs for broker users.

The implementation is exact in one direction at a time: "A allows
something B forbids" is decided by emptiness of ``L(A) ∩ L(¬B)``…
without complementation, we instead search A's lasso space directly and
check each candidate against B — complete up to the configured
enumeration bounds, which is what a comparison UI needs (a concrete,
showable difference), not a proof of equivalence.  When no difference is
found within bounds the relation is reported as *indistinguishable up to
the bound*, never as proven equivalence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..automata.buchi import BuchiAutomaton
from ..automata.language import enumerate_runs
from ..ltl.runs import Run
from .contract import Contract


class Relation(enum.Enum):
    """Outcome of a bounded behavioral comparison."""

    #: no difference found within the enumeration bounds
    INDISTINGUISHABLE = "indistinguishable-up-to-bound"
    #: the left contract allows behavior the right forbids (and not
    #: vice versa, within bounds)
    LEFT_MORE_PERMISSIVE = "left-more-permissive"
    #: symmetric case
    RIGHT_MORE_PERMISSIVE = "right-more-permissive"
    #: each allows something the other forbids
    INCOMPARABLE = "incomparable"


@dataclass(frozen=True)
class Comparison:
    """The verdict plus the witness runs that support it."""

    relation: Relation
    left_only: Run | None
    right_only: Run | None

    def __str__(self) -> str:
        parts = [self.relation.value]
        if self.left_only is not None:
            parts.append(f"left-only: {self.left_only}")
        if self.right_only is not None:
            parts.append(f"right-only: {self.right_only}")
        return "; ".join(parts)


def distinguishing_run(
    allowed_by: BuchiAutomaton,
    forbidden_by: BuchiAutomaton,
    limit: int = 64,
    max_length: int = 8,
) -> Run | None:
    """A run accepted by ``allowed_by`` and rejected by ``forbidden_by``.

    Enumerates up to ``limit`` lasso runs of the first automaton
    (simplest first) and returns the first the second rejects; ``None``
    if none is found within the bounds.
    """
    for run in enumerate_runs(allowed_by, limit=limit,
                              max_length=max_length):
        if not forbidden_by.accepts(run):
            return run
    return None


def behavioral_relation(
    left: BuchiAutomaton,
    right: BuchiAutomaton,
    limit: int = 64,
    max_length: int = 8,
) -> Comparison:
    """Bounded two-way comparison of the automata's languages."""
    left_only = distinguishing_run(left, right, limit, max_length)
    right_only = distinguishing_run(right, left, limit, max_length)
    if left_only is None and right_only is None:
        relation = Relation.INDISTINGUISHABLE
    elif right_only is None:
        relation = Relation.LEFT_MORE_PERMISSIVE
    elif left_only is None:
        relation = Relation.RIGHT_MORE_PERMISSIVE
    else:
        relation = Relation.INCOMPARABLE
    return Comparison(relation, left_only, right_only)


def compare(left: Contract, right: Contract,
            limit: int = 64, max_length: int = 8) -> Comparison:
    """Compare two registered contracts by behavior.

    Witnesses are event sequences over the respective contract's own
    vocabulary; when the vocabularies differ, a "left-only" run may be
    rejected by the right contract merely because it cites events the
    right contract constrains differently — which is exactly the
    information a customer comparing the two needs.
    """
    return behavioral_relation(left.ba, right.ba, limit, max_length)
