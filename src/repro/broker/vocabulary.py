"""The common event vocabulary as a first-class, governed object.

Requirement (ii) of the paper (§1): the interface between customers and
providers — the shared vocabulary of events — "should be compact and
reasonably stable".  In a production broker that interface needs
governance: which events exist, what they mean, and a validation point
so that a provider cannot accidentally publish a contract citing a
misspelled event (which, under the permission semantics, would silently
make the contract invisible to every query about the real event).

:class:`EventVocabulary` carries the catalog (name → human description)
and validates formulas against it; the broker accepts an optional
vocabulary at construction and then rejects non-conforming contracts at
registration time.  Queries are *not* rejected — a query citing unknown
events is legitimate and simply matches nothing on those events (that is
exactly Definition 1 at work) — but can be linted with
:meth:`EventVocabulary.unknown_events`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from ..errors import BrokerError
from ..ltl.ast import Formula


@dataclass(frozen=True)
class EventVocabulary:
    """An immutable catalog of the events contracts may cite."""

    events: Mapping[str, str]

    @classmethod
    def of(cls, *names: str) -> "EventVocabulary":
        """Quick constructor from bare names (empty descriptions)."""
        return cls({name: "" for name in names})

    @classmethod
    def describe(cls, **described: str) -> "EventVocabulary":
        """Constructor from ``name="description"`` pairs."""
        return cls(dict(described))

    def __contains__(self, event: str) -> bool:
        return event in self.events

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self.events))

    def __len__(self) -> int:
        return len(self.events)

    def names(self) -> frozenset[str]:
        return frozenset(self.events)

    def description(self, event: str) -> str:
        """The human description of one event (KeyError if unknown)."""
        return self.events[event]

    def unknown_events(self, formula: Formula) -> frozenset[str]:
        """Events the formula cites that are not in the catalog."""
        return formula.variables() - self.names()

    def validate_contract(self, name: str,
                          clauses: Iterable[Formula]) -> None:
        """Raise :class:`BrokerError` if any clause cites an unknown
        event (the registration-time guard)."""
        unknown: set[str] = set()
        for clause in clauses:
            unknown |= self.unknown_events(clause)
        if unknown:
            raise BrokerError(
                f"contract {name!r} cites events outside the common "
                f"vocabulary: {sorted(unknown)}"
            )

    def extended(self, **described: str) -> "EventVocabulary":
        """A new vocabulary with additional events.

        Growing the vocabulary never invalidates published contracts —
        the paper's requirement (iii): existing specifications make no
        commitment about new events, and the permission semantics
        already accounts for that.
        """
        merged = dict(self.events)
        merged.update(described)
        return EventVocabulary(merged)

    def __str__(self) -> str:
        return f"EventVocabulary({', '.join(sorted(self.events))})"
