"""The contract database: the broker the paper builds (§3, §7.1).

Architecture (mirroring the prototype's four modules):

* **registration** (:meth:`ContractDatabase.register`) — a contract's
  LTL clauses are conjoined, translated to a Büchi automaton
  (:mod:`repro.automata.ltl2ba` standing in for LTL2BA [12]) and reduced;
  the prefilter index (§4) is updated and the projection store (§5) and
  seed set (§6.2.4) are precomputed;
* **query evaluation** (:meth:`ContractDatabase.query`) — the query is
  compiled (translated + pruning condition, served from the LRU
  compilation cache of :mod:`repro.broker.cache` on repeats), the
  relational attribute filter narrows the database, the pruning
  condition selects candidates from the index, and the permission
  algorithm (Algorithm 2) runs on each candidate using the smallest
  applicable precomputed projection.

Every optimization can be toggled per database (:class:`BrokerConfig`)
or per query, which is how the benchmark harness measures the paper's
unoptimized-versus-optimized comparisons.

Serving-side aggregation: every query's :class:`QueryStats` is fed into
the database's :class:`~repro.obs.metrics.MetricsRegistry`
(``db.metrics``), and batched workloads can be evaluated concurrently
through :meth:`ContractDatabase.query_many`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..automata.buchi import BuchiAutomaton
from ..automata.ltl2ba import DEFAULT_STATE_BUDGET, translate
from ..core.permission import (
    PermissionStats,
    PermissionWitness,
    find_witness,
    permits,
)
from ..core.seeds import compute_seeds
from ..errors import BrokerError
from ..index.prefilter import PrefilterIndex
from ..ltl.ast import Formula
from ..ltl.parser import parse
from ..obs.metrics import COUNT_BUCKETS, RATIO_BUCKETS, MetricsRegistry
from ..projection.store import ProjectionStore
from .cache import (
    DEFAULT_CACHE_CAPACITY,
    CacheStats,
    CompiledQuery,
    QueryCompilationCache,
)
from .contract import Contract, ContractSpec
from .query import QueryResult, QueryStats
from .relational import MATCH_ALL, AttributeFilter


@dataclass(frozen=True)
class BrokerConfig:
    """Tunable knobs of the broker.

    Attributes:
        use_prefilter: evaluate pruning conditions against the §4 index.
        use_projections: precompute and use the §5 simplified BAs.
        use_seeds: apply the §6.2.4 seed filter inside Algorithm 2.
        prefilter_depth: set-trie depth cap ``k``.
        projection_subset_cap: max projected-literal-subset size
            (``None`` = all subsets).
        permission_algorithm: ``"ndfs"`` (Algorithm 2) or ``"scc"``.
        state_budget: translation state cap per formula.
        query_cache_capacity: distinct compiled queries kept in the LRU
            compilation cache (``0`` disables caching).
    """

    use_prefilter: bool = True
    use_projections: bool = True
    use_seeds: bool = True
    prefilter_depth: int = 2
    projection_subset_cap: int | None = 2
    permission_algorithm: str = "ndfs"
    state_budget: int = DEFAULT_STATE_BUDGET
    query_cache_capacity: int = DEFAULT_CACHE_CAPACITY

    def unoptimized(self) -> "BrokerConfig":
        """A copy with both indexing optimizations off (the paper's
        'scan' baseline)."""
        return replace(self, use_prefilter=False, use_projections=False)


@dataclass
class RegistrationStats:
    """Aggregate registration-side costs (§7.4 'index building')."""

    contracts: int = 0
    translation_seconds: float = 0.0
    prefilter_seconds: float = 0.0
    projection_seconds: float = 0.0
    seeds_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return (
            self.translation_seconds
            + self.prefilter_seconds
            + self.projection_seconds
            + self.seeds_seconds
        )


class ContractDatabase:
    """A queryable repository of temporally-specified contracts.

    Args:
        config: broker tuning knobs.
        vocabulary: optional governed event catalog
            (:class:`repro.broker.vocabulary.EventVocabulary`); when set,
            registration rejects contracts citing unknown events — the
            paper's "compact and reasonably stable interface"
            (requirement ii) enforced at the publishing boundary.
    """

    def __init__(self, config: BrokerConfig | None = None,
                 vocabulary=None):
        self.config = config or BrokerConfig()
        self.vocabulary = vocabulary
        self._contracts: dict[int, Contract] = {}
        self._next_id = 0
        self._index = PrefilterIndex(depth=self.config.prefilter_depth)
        self.registration_stats = RegistrationStats()
        self._query_cache = QueryCompilationCache(
            capacity=self.config.query_cache_capacity,
            state_budget=self.config.state_budget,
        )
        self.metrics = MetricsRegistry()
        #: set by the persistence layer after a snapshot load
        #: (:class:`repro.broker.persist.LoadReport`); ``None`` otherwise.
        self.load_report = None
        self._dirty = True

    # -- registration ---------------------------------------------------------------

    def register(
        self,
        name: str,
        clauses: Sequence[str | Formula] | str | Formula,
        attributes: Mapping[str, Any] | None = None,
    ) -> Contract:
        """Register a contract from its declarative clauses.

        ``clauses`` may be a single clause or a sequence; strings are
        parsed with the LTL grammar of :mod:`repro.ltl.parser`.
        """
        if isinstance(clauses, (str, Formula)):
            clauses = [clauses]
        parsed = tuple(
            parse(c) if isinstance(c, str) else c for c in clauses
        )
        spec = ContractSpec(
            name=name, clauses=parsed, attributes=dict(attributes or {})
        )
        return self.register_spec(spec)

    def register_spec(
        self,
        spec: ContractSpec,
        prebuilt_ba: BuchiAutomaton | None = None,
        *,
        prebuilt_seeds: frozenset | None = None,
        prebuilt_projections: ProjectionStore | None = None,
        update_index: bool = True,
    ) -> Contract:
        """Register a prebuilt :class:`ContractSpec`.

        ``prebuilt_ba`` / ``prebuilt_seeds`` / ``prebuilt_projections``
        let callers (the persistence layer) skip the translation, the
        seed computation and the projection precomputation when the
        equivalent artifacts are already at hand; the caller is
        responsible for their correctness.  ``update_index=False``
        additionally skips the prefilter insertion — only sensible when
        the caller restores or rebuilds the whole index afterwards (see
        :meth:`adopt_index`).
        """
        if self.vocabulary is not None:
            self.vocabulary.validate_contract(spec.name, spec.clauses)

        contract_id = self._next_id
        self._next_id += 1

        start = time.perf_counter()
        if prebuilt_ba is None:
            ba = translate(spec.formula, state_budget=self.config.state_budget)
        else:
            ba = prebuilt_ba
        self.registration_stats.translation_seconds += time.perf_counter() - start

        start = time.perf_counter()
        seeds = prebuilt_seeds if prebuilt_seeds is not None else compute_seeds(ba)
        self.registration_stats.seeds_seconds += time.perf_counter() - start

        if update_index:
            start = time.perf_counter()
            self._index.add_contract(contract_id, ba, spec.vocabulary)
            self.registration_stats.prefilter_seconds += time.perf_counter() - start

        projections = None
        if self.config.use_projections:
            if prebuilt_projections is not None:
                projections = prebuilt_projections
            else:
                start = time.perf_counter()
                projections = ProjectionStore(
                    ba, max_subset_size=self.config.projection_subset_cap
                )
                self.registration_stats.projection_seconds += (
                    time.perf_counter() - start
                )

        contract = Contract(
            contract_id=contract_id,
            spec=spec,
            ba=ba,
            seeds=seeds,
            projections=projections,
        )
        self._contracts[contract_id] = contract
        self.registration_stats.contracts += 1
        self._dirty = True
        return contract

    def deregister(self, contract_id: int) -> None:
        """Remove a contract from the database and the index."""
        if contract_id not in self._contracts:
            raise BrokerError(f"no contract with id {contract_id}")
        del self._contracts[contract_id]
        self._index.remove_contract(contract_id)
        self.registration_stats.contracts -= 1
        self._dirty = True

    # -- query compilation -------------------------------------------------------------

    @property
    def query_cache(self) -> QueryCompilationCache:
        return self._query_cache

    def cache_stats(self) -> CacheStats:
        """Counters of the query compilation cache."""
        return self._query_cache.stats()

    def _compile(self, query: str | Formula) -> tuple[CompiledQuery, bool]:
        """Parse (if needed) and compile through the LRU cache."""
        formula = parse(query) if isinstance(query, str) else query
        return self._query_cache.compile(formula)

    # -- query evaluation --------------------------------------------------------------

    def query(
        self,
        query: str | Formula,
        attribute_filter: AttributeFilter = MATCH_ALL,
        *,
        use_prefilter: bool | None = None,
        use_projections: bool | None = None,
        explain: bool = False,
    ) -> QueryResult:
        """All contracts that match the attribute filter and *permit* the
        temporal query (Definition 1).

        The per-query overrides let callers compare optimized and
        unoptimized evaluation on the same database (the harness behind
        Figures 5 and 6 does exactly this).  With ``explain`` the result
        also carries a witness run per returned contract (extracted from
        the full contract BA, so it is meaningful to show to a user).
        """
        return self._evaluate(
            query,
            attribute_filter,
            use_prefilter=use_prefilter,
            use_projections=use_projections,
            explain=explain,
            executor=None,
        )

    def query_many(
        self,
        queries: Sequence[str | Formula],
        attribute_filter: AttributeFilter = MATCH_ALL,
        *,
        workers: int = 1,
        use_prefilter: bool | None = None,
        use_projections: bool | None = None,
        explain: bool = False,
    ) -> list[QueryResult]:
        """Evaluate a whole query workload, optionally in parallel.

        With ``workers > 1`` the per-contract permission checks run on a
        thread pool (the §7.4 "completely parallel workload" observation
        applied to the query side); results are returned in input order
        and are identical to evaluating each query serially.  Falls back
        to serial evaluation when no pool can be created, exactly like
        :func:`repro.broker.parallel.register_many`.
        """
        from .parallel import query_many

        return query_many(
            self,
            queries,
            attribute_filter,
            workers=workers,
            use_prefilter=use_prefilter,
            use_projections=use_projections,
            explain=explain,
        )

    def _evaluate(
        self,
        query: str | Formula,
        attribute_filter: AttributeFilter = MATCH_ALL,
        *,
        use_prefilter: bool | None = None,
        use_projections: bool | None = None,
        explain: bool = False,
        executor=None,
    ) -> QueryResult:
        """Compile (through the cache) and evaluate one query."""
        start = time.perf_counter()
        formula = parse(query) if isinstance(query, str) else query
        compiled, cache_hit = self._query_cache.compile(formula)
        translation_seconds = time.perf_counter() - start
        return self._query_compiled(
            compiled,
            attribute_filter,
            use_prefilter=use_prefilter,
            use_projections=use_projections,
            explain=explain,
            formula=formula,
            translation_seconds=translation_seconds,
            cache_hit=cache_hit,
            executor=executor,
        )

    def _query_compiled(
        self,
        compiled: CompiledQuery,
        attribute_filter: AttributeFilter = MATCH_ALL,
        *,
        use_prefilter: bool | None = None,
        use_projections: bool | None = None,
        explain: bool = False,
        formula: Formula | None = None,
        translation_seconds: float = 0.0,
        cache_hit: bool = False,
        executor=None,
    ) -> QueryResult:
        """Evaluate an already-compiled query (the internal entry every
        public query path funnels through).

        ``executor``, when given, must provide a ``map`` method (a
        :class:`~concurrent.futures.ThreadPoolExecutor`); the
        per-candidate permission checks are then fanned out over it.
        ``map`` preserves order, so results are bit-identical to the
        serial loop.
        """
        prefilter_on = (
            self.config.use_prefilter if use_prefilter is None else use_prefilter
        )
        projections_on = (
            self.config.use_projections
            if use_projections is None
            else use_projections
        )

        stats = QueryStats(
            database_size=len(self._contracts),
            used_prefilter=prefilter_on,
            used_projections=projections_on,
            cache_hit=cache_hit,
        )
        stats.translation_seconds = translation_seconds
        overall_start = time.perf_counter()

        relational = [
            c for c in self._contracts.values()
            if attribute_filter.matches(c.attributes)
        ]
        stats.relational_matches = len(relational)
        relational_ids = {c.contract_id for c in relational}

        if prefilter_on:
            start = time.perf_counter()
            condition = compiled.condition
            stats.pruning_condition = str(condition)
            candidate_ids = self._index.evaluate(condition) & relational_ids
            stats.prefilter_seconds = time.perf_counter() - start
        else:
            candidate_ids = relational_ids
        stats.candidates = len(candidate_ids)

        candidates = [self._contracts[cid] for cid in sorted(candidate_ids)]

        def check(contract: Contract) -> tuple[bool, float, float]:
            return self._check_candidate(contract, compiled, projections_on)

        if executor is None:
            checks = [check(contract) for contract in candidates]
        else:
            checks = list(executor.map(check, candidates))

        matched: list[Contract] = []
        for contract, (outcome, selection, permission) in zip(
            candidates, checks
        ):
            stats.selection_seconds += selection
            stats.permission_seconds += permission
            stats.checked += 1
            if outcome:
                matched.append(contract)

        witnesses: dict[int, PermissionWitness] = {}
        if explain:
            for contract in matched:
                witness = find_witness(
                    contract.ba, compiled.query_ba, contract.vocabulary
                )
                if witness is not None:
                    witnesses[contract.contract_id] = witness

        stats.permitted = len(matched)
        stats.total_seconds = (
            translation_seconds + time.perf_counter() - overall_start
        )
        self._record_query(stats)
        return QueryResult(
            formula=compiled.formula if formula is None else formula,
            contract_ids=tuple(c.contract_id for c in matched),
            contract_names=tuple(c.name for c in matched),
            stats=stats,
            witnesses=witnesses,
        )

    def _check_candidate(
        self,
        contract: Contract,
        compiled: CompiledQuery,
        projections_on: bool,
    ) -> tuple[bool, float, float]:
        """One candidate's (selection, permission) check; returns the
        outcome plus the two phase durations so callers can run this from
        worker threads and still account stats in one place."""
        start = time.perf_counter()
        if projections_on and contract.projections is not None:
            checked_ba, seeds = contract.projections.select_with_seeds(
                compiled.literals
            )
        else:
            checked_ba = contract.ba
            seeds = None
        selection_seconds = time.perf_counter() - start

        start = time.perf_counter()
        if seeds is None and checked_ba is contract.ba:
            seeds = contract.seeds
        outcome = permits(
            checked_ba,
            compiled.query_ba,
            contract.vocabulary,
            algorithm=self.config.permission_algorithm,
            seeds=seeds,
            use_seeds=self.config.use_seeds,
        )
        permission_seconds = time.perf_counter() - start
        return outcome, selection_seconds, permission_seconds

    def query_planned(
        self,
        query: str | Formula,
        attribute_filter: AttributeFilter = MATCH_ALL,
        planner=None,
        **kwargs,
    ) -> QueryResult:
        """Like :meth:`query`, but let a :class:`QueryPlanner` choose the
        optimizations per query (§1's observation that the techniques
        serve different query profiles)."""
        from .planner import QueryPlanner

        planner = planner or QueryPlanner()
        start = time.perf_counter()
        formula = parse(query) if isinstance(query, str) else query
        compiled, cache_hit = self._query_cache.compile(formula)
        translation_seconds = time.perf_counter() - start
        plan = planner.plan(compiled.query_ba, condition=compiled.condition)
        return self._query_compiled(
            compiled,
            attribute_filter,
            use_prefilter=plan.use_prefilter,
            use_projections=plan.use_projections,
            formula=formula,
            translation_seconds=translation_seconds,
            cache_hit=cache_hit,
            **kwargs,
        )

    def permits_contract(self, contract_id: int, query: str | Formula) -> bool:
        """Direct single-contract permission check (full BA, no index)."""
        contract = self.get(contract_id)
        compiled, _ = self._compile(query)
        return permits(
            contract.ba,
            compiled.query_ba,
            contract.vocabulary,
            algorithm=self.config.permission_algorithm,
            seeds=contract.seeds,
            use_seeds=self.config.use_seeds,
        )

    def explain(
        self, contract_id: int, query: str | Formula
    ) -> PermissionWitness | None:
        """A simultaneous-lasso witness showing *why* the contract permits
        the query (``None`` when it does not)."""
        contract = self.get(contract_id)
        compiled, _ = self._compile(query)
        return find_witness(
            contract.ba, compiled.query_ba, contract.vocabulary
        )

    def precompute_for_workload(
        self, queries: Sequence[str | Formula]
    ) -> int:
        """Workload-guided projection precomputation (§5.2).

        Given a sample of expected queries, compute for every contract
        exactly the projections those queries will request — even beyond
        the configured subset-size cap.  Returns the number of new
        projections computed across the database.  The queries go through
        the compilation cache, so the subsequent workload runs warm.
        """
        from ..projection.project import workload_projection_subsets

        query_literal_sets = []
        for query in queries:
            compiled, _ = self._compile(query)
            query_literal_sets.append(compiled.literals)

        added = 0
        start = time.perf_counter()
        for contract in self._contracts.values():
            if contract.projections is None:
                continue
            subsets = workload_projection_subsets(
                contract.projections.literals, query_literal_sets
            )
            added += contract.projections.precompute(subsets)
        self.registration_stats.projection_seconds += (
            time.perf_counter() - start
        )
        if added:
            self._dirty = True
        return added

    # -- persistence hooks -----------------------------------------------------------

    @property
    def dirty(self) -> bool:
        """True when derived state has changed since the last snapshot
        save/load (register, deregister, workload precomputation) — the
        signal behind ``save_database(..., only_if_dirty=True)``."""
        return self._dirty

    @dirty.setter
    def dirty(self, value: bool) -> None:
        self._dirty = bool(value)

    def adopt_index(self, index: PrefilterIndex) -> None:
        """Replace the prefilter index wholesale (the persistence layer's
        snapshot-restore path).  The caller guarantees the index matches
        the registered contracts."""
        self._index = index

    # -- metrics ----------------------------------------------------------------------

    def _record_query(self, stats: QueryStats) -> None:
        """Feed one query's stats into the aggregate metrics registry."""
        metrics = self.metrics
        metrics.inc("query.count")
        metrics.inc("query.permission_checks", stats.checked)
        metrics.inc("query.permitted", stats.permitted)
        metrics.inc(
            "query.cache.hits" if stats.cache_hit else "query.cache.misses"
        )
        metrics.observe("query.translation_seconds",
                        stats.translation_seconds)
        metrics.observe("query.prefilter_seconds", stats.prefilter_seconds)
        metrics.observe("query.selection_seconds", stats.selection_seconds)
        metrics.observe("query.permission_seconds", stats.permission_seconds)
        metrics.observe("query.total_seconds", stats.total_seconds)
        metrics.observe("query.candidates", stats.candidates,
                        buckets=COUNT_BUCKETS)
        if stats.used_prefilter:
            metrics.observe("query.pruning_ratio", stats.pruning_ratio,
                            buckets=RATIO_BUCKETS)

    def metrics_snapshot(self) -> dict:
        """The metrics registry snapshot plus the compilation-cache view."""
        snapshot = self.metrics.snapshot()
        cache = self._query_cache.stats()
        snapshot["cache"] = {
            "hits": cache.hits,
            "misses": cache.misses,
            "evictions": cache.evictions,
            "size": cache.size,
            "capacity": cache.capacity,
            "hit_rate": cache.hit_rate,
        }
        return snapshot

    def metrics_report(self) -> str:
        """Human-readable aggregate report (the ``metrics`` CLI output)."""
        cache = self._query_cache.stats()
        header = (
            f"query cache: {cache.size}/{cache.capacity} entries, "
            f"{cache.hits} hits / {cache.misses} misses "
            f"({cache.hit_rate:.0%} hit rate), "
            f"{cache.evictions} evictions"
        )
        return header + "\n\n" + self.metrics.render_text()

    # -- access & introspection -----------------------------------------------------------

    def get(self, contract_id: int) -> Contract:
        contract = self._contracts.get(contract_id)
        if contract is None:
            raise BrokerError(f"no contract with id {contract_id}")
        return contract

    def contracts(self) -> Iterator[Contract]:
        return iter(self._contracts.values())

    def __len__(self) -> int:
        return len(self._contracts)

    def __contains__(self, contract_id: int) -> bool:
        return contract_id in self._contracts

    @property
    def index(self) -> PrefilterIndex:
        return self._index

    def database_stats(self) -> dict:
        """Table-2 style aggregate statistics of the stored automata."""
        import statistics as st

        state_counts = [c.ba.num_states for c in self._contracts.values()]
        transition_counts = [
            c.ba.num_transitions for c in self._contracts.values()
        ]
        if not state_counts:
            return {"contracts": 0}
        return {
            "contracts": len(state_counts),
            "states_avg": st.mean(state_counts),
            "states_stddev": st.pstdev(state_counts),
            "transitions_avg": st.mean(transition_counts),
            "transitions_stddev": st.pstdev(transition_counts),
            "index_nodes": self._index.num_nodes,
            "index_size": self._index.size_estimate(),
        }
