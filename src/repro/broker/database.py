"""The contract database: the broker the paper builds (§3, §7.1).

Architecture (mirroring the prototype's four modules):

* **registration** (:meth:`ContractDatabase.register`) — a contract's
  LTL clauses are conjoined, translated to a Büchi automaton
  (:mod:`repro.automata.ltl2ba` standing in for LTL2BA [12]) and reduced;
  the prefilter index (§4) is updated and the projection store (§5) and
  seed set (§6.2.4) are precomputed;
* **query evaluation** (:meth:`ContractDatabase.query`) — the query is
  compiled (translated + pruning condition, served from the LRU
  compilation cache of :mod:`repro.broker.cache` on repeats), the
  relational attribute filter narrows the database, the pruning
  condition selects candidates from the index, and the permission
  algorithm (Algorithm 2) runs on each candidate using the smallest
  applicable precomputed projection.

Every optimization can be toggled per database (:class:`BrokerConfig`)
or per query, which is how the benchmark harness measures the paper's
unoptimized-versus-optimized comparisons.

Serving-side aggregation: every query's :class:`QueryStats` is fed into
the database's :class:`~repro.obs.metrics.MetricsRegistry`
(``db.metrics``), and batched workloads can be evaluated concurrently
through :meth:`ContractDatabase.query_many`.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..automata.buchi import BuchiAutomaton
from ..automata.encode import encode_automaton
from ..automata.ltl2ba import DEFAULT_STATE_BUDGET, translate
from ..core.budget import Deadline, ExecutionBudget, StepBudget
from ..core.rwlock import RWLock
from ..core.permission import (
    PermissionStats,
    PermissionWitness,
    find_witness,
    permits,
    permits_encoded,
)
from ..core.seeds import compute_seeds
from ..errors import BrokerError, BudgetExceededError, QueryBudgetError
from ..index.prefilter import PrefilterIndex
from ..ltl.ast import Formula
from ..ltl.parser import parse
from ..ltl.printer import format_formula
from ..obs.metrics import (
    COST_BUCKETS,
    COUNT_BUCKETS,
    RATIO_BUCKETS,
    MetricsRegistry,
)
from ..projection.store import ProjectionStore
from .cache import (
    DEFAULT_CACHE_CAPACITY,
    DEFAULT_PLAN_CACHE_CAPACITY,
    CacheStats,
    CompiledQuery,
    QueryCompilationCache,
    QueryPlanCache,
)
from .contract import Contract, ContractSpec
from .options import (
    Degradation,
    PrebuiltArtifacts,
    QueryOptions,
    coerce_query_options,
)
from .planner import ATTR_FIRST, PREFILTER_FIRST, QueryPlan, QueryPlanner
from .query import QueryOutcome, QueryResult, QueryStats, Verdict
from .registration import Quarantine
from .relational import MATCH_ALL, AttributeFilter
from .spec import QuerySpec
from .stats import DatabaseStatistics


@dataclass(frozen=True)
class BrokerConfig:
    """Tunable knobs of the broker.

    Attributes:
        use_prefilter: evaluate pruning conditions against the §4 index.
        use_projections: precompute and use the §5 simplified BAs.
        use_seeds: apply the §6.2.4 seed filter inside Algorithm 2.
        use_encoded: run permission checks on the flat int/bitset
            encoding built at registration
            (:mod:`repro.automata.encode`) — bit-identical verdicts and
            stats, substantially faster; contracts without an encoding
            fall back to the object deciders.
        prefilter_depth: set-trie depth cap ``k``.
        projection_subset_cap: max projected-literal-subset size
            (``None`` = all subsets).
        permission_algorithm: ``"ndfs"`` (Algorithm 2) or ``"scc"``.
        state_budget: translation state cap per formula.
        query_cache_capacity: distinct compiled queries kept in the LRU
            compilation cache (``0`` disables caching).
        plan_cache_capacity: chosen query plans kept in the LRU plan
            cache — keyed by (query, filter, statistics version), so
            repeated planned queries skip re-planning (``0`` disables).
    """

    use_prefilter: bool = True
    use_projections: bool = True
    use_seeds: bool = True
    use_encoded: bool = True
    prefilter_depth: int = 2
    projection_subset_cap: int | None = 2
    permission_algorithm: str = "ndfs"
    state_budget: int = DEFAULT_STATE_BUDGET
    query_cache_capacity: int = DEFAULT_CACHE_CAPACITY
    plan_cache_capacity: int = DEFAULT_PLAN_CACHE_CAPACITY

    def unoptimized(self) -> "BrokerConfig":
        """A copy with both indexing optimizations off (the paper's
        'scan' baseline)."""
        return replace(self, use_prefilter=False, use_projections=False)


@dataclass
class RegistrationStats:
    """Aggregate registration-side costs (§7.4 'index building')."""

    contracts: int = 0
    translation_seconds: float = 0.0
    prefilter_seconds: float = 0.0
    projection_seconds: float = 0.0
    seeds_seconds: float = 0.0
    encode_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return (
            self.translation_seconds
            + self.prefilter_seconds
            + self.projection_seconds
            + self.seeds_seconds
            + self.encode_seconds
        )


class ContractDatabase:
    """A queryable repository of temporally-specified contracts.

    Args:
        config: broker tuning knobs.
        vocabulary: optional governed event catalog
            (:class:`repro.broker.vocabulary.EventVocabulary`); when set,
            registration rejects contracts citing unknown events — the
            paper's "compact and reasonably stable interface"
            (requirement ii) enforced at the publishing boundary.
    """

    def __init__(self, config: BrokerConfig | None = None,
                 vocabulary=None):
        self.config = config or BrokerConfig()
        self.vocabulary = vocabulary
        self._contracts: dict[int, Contract] = {}
        self._next_id = 0
        self._index = PrefilterIndex(depth=self.config.prefilter_depth)
        self.registration_stats = RegistrationStats()
        self._query_cache = QueryCompilationCache(
            capacity=self.config.query_cache_capacity,
            state_budget=self.config.state_budget,
        )
        self._plan_cache = QueryPlanCache(
            capacity=self.config.plan_cache_capacity
        )
        #: incrementally maintained planner statistics (attribute value
        #: histograms + automaton/projection aggregates); updated under
        #: the write lock on every register/deregister.
        self.statistics = DatabaseStatistics()
        self.metrics = MetricsRegistry()
        #: set by the persistence layer after a snapshot load
        #: (:class:`repro.broker.persist.LoadReport`); ``None`` otherwise.
        self.load_report = None
        #: set by :func:`repro.broker.journal.open_database` after a
        #: journal replay (:class:`repro.broker.journal.JournalReplayReport`).
        self.journal_report = None
        self._dirty = True
        #: specs that failed batch registration, held for retry
        #: (:class:`repro.broker.registration.Quarantine`).
        self.quarantine = Quarantine()
        # Thread-safety contract (docs/DEVELOPMENT.md invariant 11):
        # queries take the read side, mutations the write side, so a
        # query can never observe a half-inserted trie node or a
        # contract map missing its index entry.
        self._rwlock = RWLock()
        self._journal = None
        #: lazily created default fleet monitor (see :meth:`ingest`)
        self._fleet = None
        self._fleet_lock = threading.Lock()

    # -- registration ---------------------------------------------------------------

    def register(
        self,
        spec: ContractSpec | str,
        clauses: Sequence[str | Formula] | str | Formula | None = None,
        attributes: Mapping[str, Any] | None = None,
        *,
        prebuilt: PrebuiltArtifacts | None = None,
        update_index: bool = True,
    ) -> Contract:
        """Register a contract — the one registration entry point.

        Two calling forms:

        * ``register(name, clauses, attributes)`` — declarative clauses
          (single clause or sequence; strings are parsed with the LTL
          grammar of :mod:`repro.ltl.parser`);
        * ``register(spec)`` — a prebuilt :class:`ContractSpec`.

        ``prebuilt`` is an optional :class:`PrebuiltArtifacts` bundle
        (translated BA, seed set, projection store) that skips the
        corresponding precomputation — the persistence layer and the
        process-pool registration path use it; the caller vouches for
        the artifacts matching the spec.  ``update_index=False``
        additionally skips the prefilter insertion — only sensible when
        the caller restores or rebuilds the whole index afterwards (see
        :meth:`adopt_index`).
        """
        if isinstance(spec, ContractSpec):
            if clauses is not None or attributes is not None:
                raise TypeError(
                    "register(spec) does not take clauses/attributes — "
                    "they are part of the ContractSpec"
                )
        else:
            name = spec
            if clauses is None:
                raise TypeError(
                    "register(name, clauses) requires the contract's "
                    "temporal clauses"
                )
            if isinstance(clauses, (str, Formula)):
                clauses = [clauses]
            parsed = tuple(
                parse(c) if isinstance(c, str) else c for c in clauses
            )
            spec = ContractSpec(
                name=name, clauses=parsed, attributes=dict(attributes or {})
            )
        prebuilt = prebuilt or PrebuiltArtifacts()

        if self.vocabulary is not None:
            self.vocabulary.validate_contract(spec.name, spec.clauses)

        # Expensive derivations are pure functions of the spec, so they
        # run *outside* the write lock — concurrent registrations
        # translate in parallel and only serialize on the insertion.
        start = time.perf_counter()
        if prebuilt.ba is None:
            ba = translate(spec.formula, state_budget=self.config.state_budget)
        else:
            ba = prebuilt.ba
        translation_seconds = time.perf_counter() - start

        start = time.perf_counter()
        seeds = prebuilt.seeds if prebuilt.seeds is not None else compute_seeds(ba)
        seeds_seconds = time.perf_counter() - start

        # The flat int/bitset encoding is always built (it is cheap next
        # to translation) so the encoded deciders can be toggled per
        # query even on a database configured with use_encoded=False.
        start = time.perf_counter()
        encoded = (
            prebuilt.encoded
            if prebuilt.encoded is not None
            else encode_automaton(ba, spec.vocabulary)
        )
        encoded_seeds_mask = encoded.state_mask(seeds)
        encode_seconds = time.perf_counter() - start

        projections = None
        projection_seconds = 0.0
        if self.config.use_projections:
            if prebuilt.projections is not None:
                projections = prebuilt.projections
            else:
                start = time.perf_counter()
                projections = ProjectionStore(
                    ba,
                    max_subset_size=self.config.projection_subset_cap,
                    vocabulary=spec.vocabulary,
                )
                projection_seconds = time.perf_counter() - start
            if projections.vocabulary is None:
                # prebuilt stores (process pool, snapshot restore) carry
                # no vocabulary; assign it so quotients can be encoded
                projections.vocabulary = spec.vocabulary

        with self._rwlock.write():
            contract_id = self._next_id
            self._next_id += 1

            prefilter_seconds = 0.0
            if update_index:
                start = time.perf_counter()
                self._index.add_contract(contract_id, ba, spec.vocabulary)
                prefilter_seconds = time.perf_counter() - start

            contract = Contract(
                contract_id=contract_id,
                spec=spec,
                ba=ba,
                seeds=seeds,
                projections=projections,
                encoded=encoded,
                encoded_seeds_mask=encoded_seeds_mask,
            )
            self._contracts[contract_id] = contract
            self.statistics.add_contract(contract)
            stats = self.registration_stats
            stats.contracts += 1
            stats.translation_seconds += translation_seconds
            stats.seeds_seconds += seeds_seconds
            stats.encode_seconds += encode_seconds
            stats.projection_seconds += projection_seconds
            stats.prefilter_seconds += prefilter_seconds
            self._dirty = True
            # The journal append is the acknowledgement point: it is
            # fsync'd before register() returns, inside the write lock
            # so journal order always matches application order.
            if self._journal is not None:
                self._journal.append("register", {
                    "name": spec.name,
                    "clauses": [format_formula(c) for c in spec.clauses],
                    "attributes": dict(spec.attributes),
                })
        return contract

    def register_spec(
        self,
        spec: ContractSpec,
        prebuilt_ba: BuchiAutomaton | None = None,
        *,
        prebuilt_seeds: frozenset | None = None,
        prebuilt_projections: ProjectionStore | None = None,
        update_index: bool = True,
    ) -> Contract:
        """Deprecated alias of :meth:`register`.

        Migration::

            register_spec(spec)                       -> register(spec)
            register_spec(spec, prebuilt_ba=ba,       -> register(spec,
                          prebuilt_seeds=s,                prebuilt=PrebuiltArtifacts(
                          prebuilt_projections=p)              ba=ba, seeds=s,
                                                               projections=p))
            register_spec(spec, update_index=False)   -> register(spec, update_index=False)
        """
        warnings.warn(
            "ContractDatabase.register_spec() is deprecated; use "
            "register(spec, prebuilt=PrebuiltArtifacts(...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.register(
            spec,
            prebuilt=PrebuiltArtifacts(
                ba=prebuilt_ba,
                seeds=prebuilt_seeds,
                projections=prebuilt_projections,
            ),
            update_index=update_index,
        )

    def deregister(self, contract_id: int) -> None:
        """Remove a contract from the database and the index."""
        with self._rwlock.write():
            contract = self._contracts.get(contract_id)
            if contract is None:
                raise BrokerError(f"no contract with id {contract_id}")
            del self._contracts[contract_id]
            self.statistics.remove_contract(contract)
            self._index.remove_contract(contract_id)
            self.registration_stats.contracts -= 1
            self._dirty = True
            if self._journal is not None:
                self._journal.append(
                    "deregister", {"contract_id": contract_id}
                )

    # -- query compilation -------------------------------------------------------------

    @property
    def query_cache(self) -> QueryCompilationCache:
        return self._query_cache

    @property
    def plan_cache(self) -> QueryPlanCache:
        return self._plan_cache

    def cache_stats(self) -> CacheStats:
        """Counters of the query compilation cache."""
        return self._query_cache.stats()

    def _compile(self, query: str | Formula) -> tuple[CompiledQuery, bool]:
        """Parse (if needed) and compile through the LRU cache."""
        formula = parse(query) if isinstance(query, str) else query
        return self._query_cache.compile(formula)

    # -- query evaluation --------------------------------------------------------------

    def query(
        self,
        query: str | Formula | QuerySpec,
        options: QueryOptions | AttributeFilter | None = None,
        **legacy,
    ) -> QueryOutcome:
        """All contracts that match the attribute filter and *permit* the
        temporal query (Definition 1).

        The first argument is the LTL query (text or parsed
        :class:`~repro.ltl.ast.Formula`), or a whole declarative
        :class:`~repro.broker.spec.QuerySpec` — a self-contained query
        document carrying its own filter and options
        (``db.query(QuerySpec.from_file("spec.json"))``).

        The second argument is a :class:`QueryOptions` carrying every
        evaluation knob — relational filter, optimization toggles,
        witness extraction, execution budgets, degradation policy.  With
        budgets configured the answer may be *degraded*: candidates whose
        check ran out of budget appear on ``outcome.maybe_ids`` instead
        of hanging the broker (Theorem 6 makes the check PSPACE-complete,
        so an adversarial query cannot be allowed to run unboundedly).

        Deprecated pre-1.3 surface (still accepted, warns)::

            query(q, attr_filter)              -> query(q, QueryOptions(attribute_filter=attr_filter))
            query(q, use_prefilter=b)          -> query(q, QueryOptions(use_prefilter=b))
            query(q, use_projections=b)        -> query(q, QueryOptions(use_projections=b))
            query(q, explain=True)             -> query(q, QueryOptions(explain=True))
        """
        if isinstance(query, QuerySpec):
            if options is not None or legacy:
                raise TypeError(
                    "query(spec) carries its own filter and options; "
                    "pass nothing else"
                )
            return self._run_query(query.query, query.to_options())
        resolved = coerce_query_options("query", options, legacy)
        return self._run_query(query, resolved)

    def query_many(
        self,
        queries: Sequence[str | Formula],
        options: QueryOptions | AttributeFilter | None = None,
        **legacy,
    ) -> list[QueryOutcome]:
        """Evaluate a whole query workload, optionally in parallel.

        With ``options.workers > 1`` the per-contract permission checks
        run on a thread pool (the §7.4 "completely parallel workload"
        observation applied to the query side); results are returned in
        input order and are identical to evaluating each query serially.
        Falls back to serial evaluation when no pool can be created,
        exactly like :func:`repro.broker.parallel.register_many`.

        Deprecated pre-1.3 surface (still accepted, warns)::

            query_many(qs, attr_filter)        -> query_many(qs, QueryOptions(attribute_filter=attr_filter))
            query_many(qs, workers=4, ...)     -> query_many(qs, QueryOptions(workers=4, ...))
        """
        from .parallel import query_many

        resolved = coerce_query_options("query_many", options, legacy)
        return query_many(self, queries, resolved)

    def _run_query(
        self,
        query: str | Formula,
        options: QueryOptions,
        executor=None,
    ) -> QueryOutcome:
        """Compile (through the cache), plan (if asked) and evaluate one
        query.  Planning and evaluation share one read-lock acquisition,
        so the statistics a plan was priced from cannot be mutated
        between planning and execution."""
        start = time.perf_counter()
        formula = parse(query) if isinstance(query, str) else query
        compiled, cache_hit = self._query_cache.compile(formula)
        translation_seconds = time.perf_counter() - start
        with self._rwlock.read():
            plan = None
            if options.use_planner:
                plan, options = self._plan_locked(compiled, options)
            return self._query_compiled_locked(
                compiled,
                options,
                formula=formula,
                translation_seconds=translation_seconds,
                cache_hit=cache_hit,
                executor=executor,
                plan=plan,
            )

    def _plan_locked(
        self, compiled: CompiledQuery, options: QueryOptions
    ) -> tuple[QueryPlan, QueryOptions]:
        """Choose (or fetch from the plan cache) a plan for this query
        and resolve it into concrete execution options.  Caller holds
        the read lock — the planner reads the live statistics and index.
        """
        planner = options.planner or QueryPlanner()
        filter_key = options.attribute_filter.cache_key()
        cache_key = None
        plan = None
        if filter_key is not None:
            cache_key = (
                compiled.key, filter_key, self.statistics.version, planner,
            )
            plan = self._plan_cache.get(cache_key)
            self.metrics.inc(
                "planner.cache.hits" if plan is not None
                else "planner.cache.misses"
            )
        if plan is None:
            plan = planner.plan(
                compiled.query_ba,
                condition=compiled.condition,
                database=self,
                attribute_filter=options.attribute_filter,
            )
            if cache_key is not None:
                self._plan_cache.put(cache_key, plan)
        self._record_plan(plan)
        return plan, QueryPlanner.resolve(options, plan)

    def _record_plan(self, plan: QueryPlan) -> None:
        metrics = self.metrics
        metrics.inc("planner.plans")
        metrics.inc(
            "planner.prefilter_on" if plan.use_prefilter
            else "planner.prefilter_off"
        )
        metrics.inc(
            "planner.projections_on" if plan.use_projections
            else "planner.projections_off"
        )
        if plan.order == PREFILTER_FIRST:
            metrics.inc("planner.order.prefilter_first")
        else:
            metrics.inc("planner.order.attr_first")
        if plan.source == "cost":
            metrics.observe("planner.est_cost", plan.cost,
                            buckets=COST_BUCKETS)

    def plan_query(
        self,
        query: str | Formula | QuerySpec,
        options: QueryOptions | None = None,
    ) -> QueryPlan:
        """The plan the cost-based planner would choose for this query —
        no evaluation, just the inspectable :class:`QueryPlan` (the
        ``contract-broker explain`` surface).  Accepts a
        :class:`~repro.broker.spec.QuerySpec` like :meth:`query`."""
        if isinstance(query, QuerySpec):
            if options is not None:
                raise TypeError(
                    "plan_query(spec) carries its own options; "
                    "pass nothing else"
                )
            options = query.to_options()
            query = query.query
        options = coerce_query_options("plan_query", options, {})
        formula = parse(query) if isinstance(query, str) else query
        compiled, _ = self._query_cache.compile(formula)
        with self._rwlock.read():
            plan, _ = self._plan_locked(compiled, options)
        return plan

    def _query_compiled_locked(
        self,
        compiled: CompiledQuery,
        options: QueryOptions,
        *,
        formula: Formula | None = None,
        translation_seconds: float = 0.0,
        cache_hit: bool = False,
        executor=None,
        plan: QueryPlan | None = None,
    ) -> QueryOutcome:
        """Evaluate an already-compiled query (the internal entry every
        public query path funnels through).

        ``executor``, when given, must provide a ``map`` method (a
        :class:`~concurrent.futures.ThreadPoolExecutor`); the
        per-candidate permission checks are then fanned out over it.
        ``map`` preserves order, so results are bit-identical to the
        serial loop; under a deadline, queued checks whose budget is
        already gone return ``SKIPPED`` immediately (cooperative
        cancellation), so an exhausted query drains the pool quickly.

        The whole evaluation holds the database's read lock (taken by
        :meth:`_run_query`): any number of queries run concurrently, but
        none can interleave with a mutation (invariant 11).
        """
        prefilter_on = (
            self.config.use_prefilter
            if options.use_prefilter is None
            else options.use_prefilter
        )
        projections_on = (
            self.config.use_projections
            if options.use_projections is None
            else options.use_projections
        )
        encoded_on = (
            self.config.use_encoded
            if options.use_encoded is None
            else options.use_encoded
        )

        order = (
            options.stage_order
            if prefilter_on and options.stage_order is not None
            else ATTR_FIRST
        )

        stats = QueryStats(
            database_size=len(self._contracts),
            used_prefilter=prefilter_on,
            used_projections=projections_on,
            used_encoded=encoded_on,
            cache_hit=cache_hit,
            deadline_seconds=options.deadline_seconds,
            step_budget=options.step_budget,
            stage_order=order,
            planned=plan is not None,
            plan_summary=str(plan) if plan is not None else "",
        )
        stats.translation_seconds = translation_seconds
        overall_start = time.perf_counter()

        # The query's shared wall-clock budget starts here: it covers the
        # prefilter, selection, permission and witness phases (translation
        # is bounded separately by the translator's state budget).
        query_deadline = (
            Deadline.after(options.deadline_seconds)
            if options.deadline_seconds is not None
            else None
        )

        restrict = (
            frozenset(options.contract_ids)
            if options.contract_ids is not None
            else None
        )
        if order == PREFILTER_FIRST:
            # Prune first, filter the survivors: the candidate set is
            # the same intersection as attr-first, just computed in the
            # cheaper order for a selective condition and a wide filter.
            start = time.perf_counter()
            condition = compiled.condition
            stats.pruning_condition = str(condition)
            pruned = self._index.evaluate(condition)
            stats.prefilter_seconds = time.perf_counter() - start
            relational = [
                self._contracts[cid] for cid in pruned
                if (restrict is None or cid in restrict)
                and options.attribute_filter.matches(
                    self._contracts[cid].attributes
                )
            ]
            stats.relational_matches = len(relational)
            candidate_ids = {c.contract_id for c in relational}
        else:
            relational = [
                c for c in self._contracts.values()
                if (restrict is None or c.contract_id in restrict)
                and options.attribute_filter.matches(c.attributes)
            ]
            stats.relational_matches = len(relational)
            relational_ids = {c.contract_id for c in relational}

            if prefilter_on:
                start = time.perf_counter()
                condition = compiled.condition
                stats.pruning_condition = str(condition)
                candidate_ids = (
                    self._index.evaluate(condition) & relational_ids
                )
                stats.prefilter_seconds = time.perf_counter() - start
            else:
                candidate_ids = relational_ids
        stats.candidates = len(candidate_ids)

        candidates = [self._contracts[cid] for cid in sorted(candidate_ids)]

        def make_budget() -> ExecutionBudget | None:
            if not options.budgeted:
                return None
            deadline = query_deadline
            if options.contract_deadline_seconds is not None:
                deadline = Deadline.earliest(
                    deadline,
                    Deadline.after(options.contract_deadline_seconds),
                )
            steps = (
                StepBudget(options.step_budget)
                if options.step_budget is not None
                else None
            )
            return ExecutionBudget(
                deadline=deadline,
                steps=steps,
                check_interval=options.budget_check_interval,
            )

        def check(contract: Contract) -> tuple[Verdict, float, float]:
            return self._check_candidate(
                contract, compiled, projections_on, make_budget(),
                use_encoded=encoded_on,
            )

        if executor is None:
            checks = [check(contract) for contract in candidates]
        else:
            checks = list(executor.map(check, candidates))

        matched: list[Contract] = []
        maybe: list[Contract] = []
        verdicts: dict[int, Verdict] = {}
        for contract, (verdict, selection, permission) in zip(
            candidates, checks
        ):
            stats.selection_seconds += selection
            stats.permission_seconds += permission
            verdicts[contract.contract_id] = verdict
            if verdict.conclusive:
                stats.checked += 1
                if verdict is Verdict.PERMITTED:
                    matched.append(contract)
            else:
                if verdict is Verdict.TIMED_OUT:
                    stats.timed_out += 1
                else:
                    stats.skipped += 1
                maybe.append(contract)

        stats.degraded = bool(maybe)
        if stats.degraded and options.degradation is Degradation.FAIL:
            stats.permitted = len(matched)
            stats.total_seconds = (
                translation_seconds + time.perf_counter() - overall_start
            )
            self._record_query(stats)
            raise QueryBudgetError(
                f"query budget exhausted: {stats.timed_out} check(s) timed "
                f"out and {stats.skipped} were skipped out of "
                f"{stats.candidates} candidates"
            )

        witnesses: dict[int, PermissionWitness] = {}
        if options.explain:
            for contract in matched:
                if query_deadline is not None and query_deadline.expired():
                    break
                witness = find_witness(
                    contract.ba, compiled.query_ba, contract.vocabulary
                )
                if witness is not None:
                    witnesses[contract.contract_id] = witness

        report_maybe = (
            maybe if options.degradation is Degradation.MAYBE else []
        )
        stats.permitted = len(matched)
        stats.total_seconds = (
            translation_seconds + time.perf_counter() - overall_start
        )
        self._record_query(stats)
        return QueryOutcome(
            formula=compiled.formula if formula is None else formula,
            contract_ids=tuple(c.contract_id for c in matched),
            contract_names=tuple(c.name for c in matched),
            stats=stats,
            witnesses=witnesses,
            verdicts=verdicts,
            maybe_ids=tuple(c.contract_id for c in report_maybe),
            maybe_names=tuple(c.name for c in report_maybe),
        )

    def _check_candidate(
        self,
        contract: Contract,
        compiled: CompiledQuery,
        projections_on: bool,
        budget: ExecutionBudget | None = None,
        *,
        use_encoded: bool = True,
    ) -> tuple[Verdict, float, float]:
        """One candidate's (selection, permission) check; returns the
        verdict plus the two phase durations so callers can run this from
        worker threads and still account stats in one place.

        With ``use_encoded`` the search runs on the flat int encoding
        (contract-level or per-quotient) whenever one is available,
        falling back to the object deciders otherwise — the two paths
        are verdict- and budget-identical by construction.

        With an exhausted budget the check is *cancelled* — it returns
        ``SKIPPED`` without selecting a projection or starting the
        search; a budget that trips mid-search yields ``TIMED_OUT``.
        """
        if budget is not None and budget.exhausted():
            return Verdict.SKIPPED, 0.0, 0.0

        start = time.perf_counter()
        encoded = None
        seeds_mask = None
        if projections_on and contract.projections is not None:
            if use_encoded:
                checked_ba, seeds, encoded, seeds_mask = (
                    contract.projections.select_artifacts(compiled.literals)
                )
            else:
                checked_ba, seeds = contract.projections.select_with_seeds(
                    compiled.literals
                )
        else:
            checked_ba = contract.ba
            seeds = None
        selection_seconds = time.perf_counter() - start

        start = time.perf_counter()
        if checked_ba is contract.ba:
            if seeds is None:
                seeds = contract.seeds
            if use_encoded and encoded is None:
                encoded = contract.encoded
                seeds_mask = contract.encoded_seeds_mask
        try:
            if encoded is not None:
                outcome = permits_encoded(
                    encoded,
                    compiled.encoded_query,
                    algorithm=self.config.permission_algorithm,
                    seeds_mask=seeds_mask,
                    use_seeds=self.config.use_seeds,
                    budget=budget,
                )
            else:
                outcome = permits(
                    checked_ba,
                    compiled.query_ba,
                    contract.vocabulary,
                    algorithm=self.config.permission_algorithm,
                    seeds=seeds,
                    use_seeds=self.config.use_seeds,
                    budget=budget,
                )
        except BudgetExceededError:
            permission_seconds = time.perf_counter() - start
            return Verdict.TIMED_OUT, selection_seconds, permission_seconds
        permission_seconds = time.perf_counter() - start
        verdict = Verdict.PERMITTED if outcome else Verdict.NOT_PERMITTED
        return verdict, selection_seconds, permission_seconds

    def query_planned(
        self,
        query: str | Formula,
        attribute_filter: AttributeFilter = MATCH_ALL,
        planner=None,
        **kwargs,
    ) -> QueryOutcome:
        """Deprecated alias: planner-driven evaluation.

        Migration::

            query_planned(q)                  -> query(q, QueryOptions(use_planner=True))
            query_planned(q, f, planner=p)    -> query(q, QueryOptions(attribute_filter=f,
                                                                       use_planner=True, planner=p))
        """
        warnings.warn(
            "ContractDatabase.query_planned() is deprecated; use "
            "query(q, QueryOptions(use_planner=True, planner=...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        resolved = coerce_query_options(
            "query_planned", attribute_filter, kwargs
        )
        return self._run_query(
            query, resolved.evolve(use_planner=True, planner=planner)
        )

    # -- streaming monitoring --------------------------------------------------------

    def monitor_fleet(self, options=None, watches=None):
        """A :class:`~repro.stream.engine.FleetMonitor` over the
        currently registered contracts, fed by this database's metrics
        registry (``monitor.*`` instruments).

        The fleet is a *snapshot* taken under the read lock: contracts
        registered afterwards are not monitored by it (build a new fleet
        to pick them up).  Contract names key the fleet; a duplicate
        name is disambiguated as ``name#<contract_id>``.

        Args:
            options: a :class:`~repro.stream.options.MonitorOptions`.
            watches: optional fleet-wide watch queries to register up
                front, as a ``{name: query}`` mapping.
        """
        from ..stream.engine import FleetMonitor

        fleet = FleetMonitor(options=options, metrics=self.metrics)
        with self._rwlock.read():
            contracts = sorted(self._contracts.items())
        taken = set()
        for contract_id, contract in contracts:
            name = contract.name
            if name in taken:
                name = f"{name}#{contract_id}"
            taken.add(name)
            encoded = contract.encoded
            if encoded is None:
                encoded = encode_automaton(contract.ba, contract.vocabulary)
            fleet.add_contract(name, encoded, contract_id=contract_id)
        if watches:
            for watch_name, query in dict(watches).items():
                fleet.register_watch(watch_name, query)
        return fleet

    def ingest(self, events, options=None):
        """Batch-feed stream records to the database's default fleet
        monitor (created lazily via :meth:`monitor_fleet` on first use,
        so monitor state survives across batches).  Returns the
        :class:`~repro.stream.engine.IngestReport`."""
        with self._fleet_lock:
            if self._fleet is None:
                self._fleet = self.monitor_fleet(options)
            fleet = self._fleet
        return fleet.ingest(events)

    def permits_contract(self, contract_id: int, query: str | Formula) -> bool:
        """Deprecated alias: single-contract permission check (full BA,
        no index).

        Migration::

            permits_contract(cid, q) -> cid in query(q, QueryOptions(
                                            contract_ids=(cid,),
                                            use_prefilter=False,
                                            use_projections=False)).contract_ids
        """
        warnings.warn(
            "ContractDatabase.permits_contract() is deprecated; use "
            "query(q, QueryOptions(contract_ids=(cid,), use_prefilter=False, "
            "use_projections=False)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.get(contract_id)  # keep the unknown-contract BrokerError
        outcome = self._run_query(
            query,
            QueryOptions(
                contract_ids=(contract_id,),
                use_prefilter=False,
                use_projections=False,
            ),
        )
        return contract_id in outcome.contract_ids

    def explain(
        self, contract_id: int, query: str | Formula
    ) -> PermissionWitness | None:
        """Deprecated alias: a simultaneous-lasso witness showing *why*
        the contract permits the query (``None`` when it does not).

        Migration::

            explain(cid, q) -> query(q, QueryOptions(contract_ids=(cid,),
                                   use_prefilter=False, use_projections=False,
                                   explain=True)).witnesses.get(cid)
        """
        warnings.warn(
            "ContractDatabase.explain() is deprecated; use "
            "query(q, QueryOptions(contract_ids=(cid,), explain=True, "
            "use_prefilter=False, use_projections=False)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.get(contract_id)  # keep the unknown-contract BrokerError
        outcome = self._run_query(
            query,
            QueryOptions(
                contract_ids=(contract_id,),
                use_prefilter=False,
                use_projections=False,
                explain=True,
            ),
        )
        return outcome.witnesses.get(contract_id)

    def precompute_for_workload(
        self, queries: Sequence[str | Formula]
    ) -> int:
        """Workload-guided projection precomputation (§5.2).

        Given a sample of expected queries, compute for every contract
        exactly the projections those queries will request — even beyond
        the configured subset-size cap.  Returns the number of new
        projections computed across the database.  The queries go through
        the compilation cache, so the subsequent workload runs warm.
        """
        from ..projection.project import workload_projection_subsets

        query_literal_sets = []
        for query in queries:
            compiled, _ = self._compile(query)
            query_literal_sets.append(compiled.literals)

        added = 0
        start = time.perf_counter()
        with self._rwlock.write():
            for contract in self._contracts.values():
                if contract.projections is None:
                    continue
                subsets = workload_projection_subsets(
                    contract.projections.literals, query_literal_sets
                )
                added += contract.projections.precompute(subsets)
            self.registration_stats.projection_seconds += (
                time.perf_counter() - start
            )
            if added:
                self._dirty = True
        return added

    # -- persistence hooks -----------------------------------------------------------

    @property
    def dirty(self) -> bool:
        """True when derived state has changed since the last snapshot
        save/load (register, deregister, workload precomputation) — the
        signal behind ``save_database(..., only_if_dirty=True)``."""
        return self._dirty

    @dirty.setter
    def dirty(self, value: bool) -> None:
        self._dirty = bool(value)

    def adopt_index(self, index: PrefilterIndex) -> None:
        """Replace the prefilter index wholesale (the persistence layer's
        snapshot-restore path).  The caller guarantees the index matches
        the registered contracts."""
        with self._rwlock.write():
            self._index = index
            if self._journal is not None:
                # replay rebuilds the index through the mutation records
                # themselves, so the record carries no index payload —
                # it only keeps the journal a complete mutation history
                self._journal.append("adopt_index", {})

    # -- journaling & concurrency -----------------------------------------------------

    @property
    def journal(self):
        """The attached write-ahead journal
        (:class:`repro.broker.journal.Journal`), or ``None``."""
        return self._journal

    def attach_journal(self, journal) -> None:
        """Attach a journal: every further acknowledged mutation is
        durably appended to it before the mutating call returns.  Use
        :func:`repro.broker.journal.open_database` rather than calling
        this directly — it replays the existing tail first."""
        self._journal = journal

    @property
    def lock(self) -> RWLock:
        """The database's reader-writer lock.  Queries hold the read
        side, mutations the write side; the persistence layer takes the
        write side around snapshot+compaction so no acknowledged
        mutation can fall between the snapshot and the journal reset."""
        return self._rwlock

    # -- metrics ----------------------------------------------------------------------

    def _record_query(self, stats: QueryStats) -> None:
        """Feed one query's stats into the aggregate metrics registry."""
        metrics = self.metrics
        metrics.inc("query.count")
        metrics.inc("query.permission_checks", stats.checked)
        metrics.inc("query.permitted", stats.permitted)
        metrics.inc(
            "query.cache.hits" if stats.cache_hit else "query.cache.misses"
        )
        metrics.observe("query.translation_seconds",
                        stats.translation_seconds)
        metrics.observe("query.prefilter_seconds", stats.prefilter_seconds)
        metrics.observe("query.selection_seconds", stats.selection_seconds)
        metrics.observe("query.permission_seconds", stats.permission_seconds)
        metrics.observe("query.total_seconds", stats.total_seconds)
        metrics.observe("query.candidates", stats.candidates,
                        buckets=COUNT_BUCKETS)
        if stats.used_prefilter:
            metrics.observe("query.pruning_ratio", stats.pruning_ratio,
                            buckets=RATIO_BUCKETS)
        if stats.degraded:
            metrics.inc("query.degraded")
            metrics.inc("query.contracts_timed_out", stats.timed_out)
            metrics.inc("query.contracts_skipped", stats.skipped)

    def metrics_snapshot(self) -> dict:
        """The metrics registry snapshot plus the compilation-cache view."""
        snapshot = self.metrics.snapshot()
        cache = self._query_cache.stats()
        snapshot["cache"] = {
            "hits": cache.hits,
            "misses": cache.misses,
            "evictions": cache.evictions,
            "size": cache.size,
            "capacity": cache.capacity,
            "hit_rate": cache.hit_rate,
        }
        plans = self._plan_cache.stats()
        snapshot["plan_cache"] = {
            "hits": plans.hits,
            "misses": plans.misses,
            "evictions": plans.evictions,
            "size": plans.size,
            "capacity": plans.capacity,
            "hit_rate": plans.hit_rate,
        }
        return snapshot

    def metrics_report(self) -> str:
        """Human-readable aggregate report (the ``metrics`` CLI output)."""
        cache = self._query_cache.stats()
        header = (
            f"query cache: {cache.size}/{cache.capacity} entries, "
            f"{cache.hits} hits / {cache.misses} misses "
            f"({cache.hit_rate:.0%} hit rate), "
            f"{cache.evictions} evictions"
        )
        return header + "\n\n" + self.metrics.render_text()

    # -- access & introspection -----------------------------------------------------------

    def get(self, contract_id: int) -> Contract:
        contract = self._contracts.get(contract_id)
        if contract is None:
            raise BrokerError(f"no contract with id {contract_id}")
        return contract

    def contracts(self) -> Iterator[Contract]:
        # a materialized snapshot: safe to consume while another thread
        # registers or deregisters (the dict itself never escapes)
        return iter(list(self._contracts.values()))

    def __len__(self) -> int:
        return len(self._contracts)

    def __contains__(self, contract_id: int) -> bool:
        return contract_id in self._contracts

    @property
    def index(self) -> PrefilterIndex:
        return self._index

    def database_stats(self) -> dict:
        """Table-2 style aggregate statistics of the stored automata."""
        import statistics as st

        state_counts = [c.ba.num_states for c in self._contracts.values()]
        transition_counts = [
            c.ba.num_transitions for c in self._contracts.values()
        ]
        if not state_counts:
            return {"contracts": 0}
        return {
            "contracts": len(state_counts),
            "states_avg": st.mean(state_counts),
            "states_stddev": st.pstdev(state_counts),
            "transitions_avg": st.mean(transition_counts),
            "transitions_stddev": st.pstdev(transition_counts),
            "index_nodes": self._index.num_nodes,
            "index_size": self._index.size_estimate(),
        }
