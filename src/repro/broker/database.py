"""The contract database: the broker the paper builds (§3, §7.1).

Architecture (mirroring the prototype's four modules):

* **registration** (:meth:`ContractDatabase.register`) — a contract's
  LTL clauses are conjoined, translated to a Büchi automaton
  (:mod:`repro.automata.ltl2ba` standing in for LTL2BA [12]) and reduced;
  the prefilter index (§4) is updated and the projection store (§5) and
  seed set (§6.2.4) are precomputed;
* **query evaluation** (:meth:`ContractDatabase.query`) — the query is
  translated, the relational attribute filter narrows the database, the
  pruning condition selects candidates from the index, and the
  permission algorithm (Algorithm 2) runs on each candidate using the
  smallest applicable precomputed projection.

Every optimization can be toggled per database (:class:`BrokerConfig`)
or per query, which is how the benchmark harness measures the paper's
unoptimized-versus-optimized comparisons.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..automata.buchi import BuchiAutomaton
from ..automata.ltl2ba import DEFAULT_STATE_BUDGET, translate
from ..core.permission import (
    PermissionStats,
    PermissionWitness,
    find_witness,
    permits,
)
from ..core.seeds import compute_seeds
from ..errors import BrokerError
from ..index.prefilter import PrefilterIndex
from ..index.pruning import pruning_condition
from ..ltl.ast import Formula
from ..ltl.parser import parse
from ..projection.store import ProjectionStore
from .contract import Contract, ContractSpec
from .query import QueryResult, QueryStats
from .relational import MATCH_ALL, AttributeFilter


@dataclass(frozen=True)
class BrokerConfig:
    """Tunable knobs of the broker.

    Attributes:
        use_prefilter: evaluate pruning conditions against the §4 index.
        use_projections: precompute and use the §5 simplified BAs.
        use_seeds: apply the §6.2.4 seed filter inside Algorithm 2.
        prefilter_depth: set-trie depth cap ``k``.
        projection_subset_cap: max projected-literal-subset size
            (``None`` = all subsets).
        permission_algorithm: ``"ndfs"`` (Algorithm 2) or ``"scc"``.
        state_budget: translation state cap per formula.
    """

    use_prefilter: bool = True
    use_projections: bool = True
    use_seeds: bool = True
    prefilter_depth: int = 2
    projection_subset_cap: int | None = 2
    permission_algorithm: str = "ndfs"
    state_budget: int = DEFAULT_STATE_BUDGET

    def unoptimized(self) -> "BrokerConfig":
        """A copy with both indexing optimizations off (the paper's
        'scan' baseline)."""
        return replace(self, use_prefilter=False, use_projections=False)


@dataclass
class RegistrationStats:
    """Aggregate registration-side costs (§7.4 'index building')."""

    contracts: int = 0
    translation_seconds: float = 0.0
    prefilter_seconds: float = 0.0
    projection_seconds: float = 0.0
    seeds_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return (
            self.translation_seconds
            + self.prefilter_seconds
            + self.projection_seconds
            + self.seeds_seconds
        )


class ContractDatabase:
    """A queryable repository of temporally-specified contracts.

    Args:
        config: broker tuning knobs.
        vocabulary: optional governed event catalog
            (:class:`repro.broker.vocabulary.EventVocabulary`); when set,
            registration rejects contracts citing unknown events — the
            paper's "compact and reasonably stable interface"
            (requirement ii) enforced at the publishing boundary.
    """

    def __init__(self, config: BrokerConfig | None = None,
                 vocabulary=None):
        self.config = config or BrokerConfig()
        self.vocabulary = vocabulary
        self._contracts: dict[int, Contract] = {}
        self._next_id = 0
        self._index = PrefilterIndex(depth=self.config.prefilter_depth)
        self.registration_stats = RegistrationStats()

    # -- registration ---------------------------------------------------------------

    def register(
        self,
        name: str,
        clauses: Sequence[str | Formula] | str | Formula,
        attributes: Mapping[str, Any] | None = None,
    ) -> Contract:
        """Register a contract from its declarative clauses.

        ``clauses`` may be a single clause or a sequence; strings are
        parsed with the LTL grammar of :mod:`repro.ltl.parser`.
        """
        if isinstance(clauses, (str, Formula)):
            clauses = [clauses]
        parsed = tuple(
            parse(c) if isinstance(c, str) else c for c in clauses
        )
        spec = ContractSpec(
            name=name, clauses=parsed, attributes=dict(attributes or {})
        )
        return self.register_spec(spec)

    def register_spec(
        self,
        spec: ContractSpec,
        prebuilt_ba: BuchiAutomaton | None = None,
    ) -> Contract:
        """Register a prebuilt :class:`ContractSpec`.

        ``prebuilt_ba`` lets callers (the persistence layer) skip the
        translation when an equivalent automaton is already at hand; the
        caller is responsible for its correctness.
        """
        if self.vocabulary is not None:
            self.vocabulary.validate_contract(spec.name, spec.clauses)

        contract_id = self._next_id
        self._next_id += 1

        start = time.perf_counter()
        if prebuilt_ba is None:
            ba = translate(spec.formula, state_budget=self.config.state_budget)
        else:
            ba = prebuilt_ba
        self.registration_stats.translation_seconds += time.perf_counter() - start

        start = time.perf_counter()
        seeds = compute_seeds(ba)
        self.registration_stats.seeds_seconds += time.perf_counter() - start

        start = time.perf_counter()
        self._index.add_contract(contract_id, ba, spec.vocabulary)
        self.registration_stats.prefilter_seconds += time.perf_counter() - start

        projections = None
        if self.config.use_projections:
            start = time.perf_counter()
            projections = ProjectionStore(
                ba, max_subset_size=self.config.projection_subset_cap
            )
            self.registration_stats.projection_seconds += (
                time.perf_counter() - start
            )

        contract = Contract(
            contract_id=contract_id,
            spec=spec,
            ba=ba,
            seeds=seeds,
            projections=projections,
        )
        self._contracts[contract_id] = contract
        self.registration_stats.contracts += 1
        return contract

    def deregister(self, contract_id: int) -> None:
        """Remove a contract from the database and the index."""
        if contract_id not in self._contracts:
            raise BrokerError(f"no contract with id {contract_id}")
        del self._contracts[contract_id]
        self._index.remove_contract(contract_id)

    # -- query evaluation --------------------------------------------------------------

    def query(
        self,
        query: str | Formula,
        attribute_filter: AttributeFilter = MATCH_ALL,
        *,
        use_prefilter: bool | None = None,
        use_projections: bool | None = None,
        explain: bool = False,
    ) -> QueryResult:
        """All contracts that match the attribute filter and *permit* the
        temporal query (Definition 1).

        The per-query overrides let callers compare optimized and
        unoptimized evaluation on the same database (the harness behind
        Figures 5 and 6 does exactly this).  With ``explain`` the result
        also carries a witness run per returned contract (extracted from
        the full contract BA, so it is meaningful to show to a user).
        """
        prefilter_on = (
            self.config.use_prefilter if use_prefilter is None else use_prefilter
        )
        projections_on = (
            self.config.use_projections
            if use_projections is None
            else use_projections
        )

        stats = QueryStats(
            database_size=len(self._contracts),
            used_prefilter=prefilter_on,
            used_projections=projections_on,
        )
        overall_start = time.perf_counter()

        start = time.perf_counter()
        if isinstance(query, tuple):
            # internal fast path: (formula, prebuilt query BA) from
            # query_planned, which already paid the translation
            formula, query_ba = query
        else:
            formula = parse(query) if isinstance(query, str) else query
            query_ba = translate(
                formula, state_budget=self.config.state_budget
            )
        stats.translation_seconds = time.perf_counter() - start

        relational = [
            c for c in self._contracts.values()
            if attribute_filter.matches(c.attributes)
        ]
        stats.relational_matches = len(relational)
        relational_ids = {c.contract_id for c in relational}

        if prefilter_on:
            start = time.perf_counter()
            condition = pruning_condition(query_ba)
            stats.pruning_condition = str(condition)
            candidate_ids = self._index.evaluate(condition) & relational_ids
            stats.prefilter_seconds = time.perf_counter() - start
        else:
            candidate_ids = relational_ids
        stats.candidates = len(candidate_ids)

        query_literals = query_ba.literals()
        matched: list[Contract] = []
        for contract_id in sorted(candidate_ids):
            contract = self._contracts[contract_id]
            start = time.perf_counter()
            if projections_on and contract.projections is not None:
                checked_ba, seeds = contract.projections.select_with_seeds(
                    query_literals
                )
            else:
                checked_ba = contract.ba
                seeds = None
            stats.selection_seconds += time.perf_counter() - start

            start = time.perf_counter()
            if seeds is None and checked_ba is contract.ba:
                seeds = contract.seeds
            outcome = permits(
                checked_ba,
                query_ba,
                contract.vocabulary,
                algorithm=self.config.permission_algorithm,
                seeds=seeds,
                use_seeds=self.config.use_seeds,
            )
            stats.permission_seconds += time.perf_counter() - start
            stats.checked += 1
            if outcome:
                matched.append(contract)

        witnesses: dict[int, PermissionWitness] = {}
        if explain:
            for contract in matched:
                witness = find_witness(
                    contract.ba, query_ba, contract.vocabulary
                )
                if witness is not None:
                    witnesses[contract.contract_id] = witness

        stats.permitted = len(matched)
        stats.total_seconds = time.perf_counter() - overall_start
        return QueryResult(
            formula=formula,
            contract_ids=tuple(c.contract_id for c in matched),
            contract_names=tuple(c.name for c in matched),
            stats=stats,
            witnesses=witnesses,
        )

    def query_planned(
        self,
        query: str | Formula,
        attribute_filter: AttributeFilter = MATCH_ALL,
        planner=None,
        **kwargs,
    ) -> QueryResult:
        """Like :meth:`query`, but let a :class:`QueryPlanner` choose the
        optimizations per query (§1's observation that the techniques
        serve different query profiles)."""
        from .planner import QueryPlanner

        planner = planner or QueryPlanner()
        formula = parse(query) if isinstance(query, str) else query
        query_ba = translate(formula, state_budget=self.config.state_budget)
        plan = planner.plan(query_ba)
        return self.query(
            (formula, query_ba),  # reuse the translation
            attribute_filter,
            use_prefilter=plan.use_prefilter,
            use_projections=plan.use_projections,
            **kwargs,
        )

    def permits_contract(self, contract_id: int, query: str | Formula) -> bool:
        """Direct single-contract permission check (full BA, no index)."""
        contract = self.get(contract_id)
        formula = parse(query) if isinstance(query, str) else query
        query_ba = translate(formula, state_budget=self.config.state_budget)
        return permits(
            contract.ba,
            query_ba,
            contract.vocabulary,
            algorithm=self.config.permission_algorithm,
            seeds=contract.seeds,
            use_seeds=self.config.use_seeds,
        )

    def explain(
        self, contract_id: int, query: str | Formula
    ) -> PermissionWitness | None:
        """A simultaneous-lasso witness showing *why* the contract permits
        the query (``None`` when it does not)."""
        contract = self.get(contract_id)
        formula = parse(query) if isinstance(query, str) else query
        query_ba = translate(formula, state_budget=self.config.state_budget)
        return find_witness(contract.ba, query_ba, contract.vocabulary)

    def precompute_for_workload(
        self, queries: Sequence[str | Formula]
    ) -> int:
        """Workload-guided projection precomputation (§5.2).

        Given a sample of expected queries, compute for every contract
        exactly the projections those queries will request — even beyond
        the configured subset-size cap.  Returns the number of new
        projections computed across the database.
        """
        from ..projection.project import workload_projection_subsets

        query_literal_sets = []
        for query in queries:
            formula = parse(query) if isinstance(query, str) else query
            query_ba = translate(formula, state_budget=self.config.state_budget)
            query_literal_sets.append(query_ba.literals())

        added = 0
        start = time.perf_counter()
        for contract in self._contracts.values():
            if contract.projections is None:
                continue
            subsets = workload_projection_subsets(
                contract.projections.literals, query_literal_sets
            )
            added += contract.projections.precompute(subsets)
        self.registration_stats.projection_seconds += (
            time.perf_counter() - start
        )
        return added

    # -- access & introspection -----------------------------------------------------------

    def get(self, contract_id: int) -> Contract:
        contract = self._contracts.get(contract_id)
        if contract is None:
            raise BrokerError(f"no contract with id {contract_id}")
        return contract

    def contracts(self) -> Iterator[Contract]:
        return iter(self._contracts.values())

    def __len__(self) -> int:
        return len(self._contracts)

    def __contains__(self, contract_id: int) -> bool:
        return contract_id in self._contracts

    @property
    def index(self) -> PrefilterIndex:
        return self._index

    def database_stats(self) -> dict:
        """Table-2 style aggregate statistics of the stored automata."""
        import statistics as st

        state_counts = [c.ba.num_states for c in self._contracts.values()]
        transition_counts = [
            c.ba.num_transitions for c in self._contracts.values()
        ]
        if not state_counts:
            return {"contracts": 0}
        return {
            "contracts": len(state_counts),
            "states_avg": st.mean(state_counts),
            "states_stddev": st.pstdev(state_counts),
            "transitions_avg": st.mean(transition_counts),
            "transitions_stddev": st.pstdev(transition_counts),
            "index_nodes": self._index.num_nodes,
            "index_size": self._index.size_estimate(),
        }
