"""Query-side objects: the result of a broker query and its statistics.

The paper's runtime module "takes as input a query workload text file and
outputs statistics regarding their evaluation" (§7.1); the per-phase
timings recorded here are exactly the quantities its Figures 5 and 6
aggregate (query LTL-to-BA conversion + candidate selection + permission
checks).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from ..ltl.ast import Formula


class Verdict(enum.Enum):
    """The per-contract outcome of a budgeted permission check."""

    #: the check completed: the contract permits the query
    PERMITTED = "permitted"
    #: the check completed: the contract does not permit the query
    NOT_PERMITTED = "not_permitted"
    #: the check started but its execution budget ran out mid-search
    TIMED_OUT = "timed_out"
    #: the query budget was already gone before the check started
    #: (cancellation of queued candidates)
    SKIPPED = "skipped"

    @property
    def conclusive(self) -> bool:
        """Whether the permission algorithm actually decided this one."""
        return self in (Verdict.PERMITTED, Verdict.NOT_PERMITTED)


@dataclass
class QueryStats:
    """Per-query timing and work counters.

    All durations are seconds.  ``scan_time`` in the paper's terminology
    is the total of an unoptimized evaluation; here ``total_time`` plays
    that role when both optimizations are disabled.

    Under an execution budget ``candidates`` always equals
    ``checked + timed_out + skipped``; without one, every candidate is
    checked and the two budget counters stay zero.

    ``stage_order`` records how the relational and prefilter stages were
    ordered.  With ``"prefilter_first"`` the attribute filter runs only
    on the index's survivors, so ``relational_matches`` counts attribute
    matches *among* them (and equals ``candidates``); the candidate set
    itself is the same intersection either way.
    """

    translation_seconds: float = 0.0  # cache-lookup time on a cache hit
    prefilter_seconds: float = 0.0
    selection_seconds: float = 0.0
    permission_seconds: float = 0.0
    total_seconds: float = 0.0
    database_size: int = 0
    relational_matches: int = 0
    candidates: int = 0
    checked: int = 0
    permitted: int = 0
    timed_out: int = 0
    skipped: int = 0
    degraded: bool = False
    deadline_seconds: float | None = None
    step_budget: int | None = None
    used_prefilter: bool = False
    used_projections: bool = False
    used_encoded: bool = False
    cache_hit: bool = False
    pruning_condition: str = ""
    stage_order: str = "attr_first"
    planned: bool = False
    plan_summary: str = ""

    @property
    def pruning_ratio(self) -> float:
        """Fraction of the (relationally matching) database pruned away
        before the permission algorithm ran."""
        if self.relational_matches == 0:
            return 0.0
        return 1.0 - self.candidates / self.relational_matches


@dataclass
class QueryResult:
    """The broker's answer to one temporal query.

    ``witnesses`` is populated only when the query ran with
    ``explain=True``: it maps each returned contract id to a
    simultaneous-lasso witness whose :meth:`to_run` produces a concrete
    allowed sequence satisfying the query — the evidence a customer
    would want to see.
    """

    formula: Formula
    contract_ids: tuple[int, ...]
    contract_names: tuple[str, ...]
    stats: QueryStats = field(default_factory=QueryStats)
    witnesses: dict = field(default_factory=dict)

    def witness_for(self, contract_id: int):
        """The witness for one returned contract (KeyError if the query
        did not run with ``explain=True`` or the contract not returned)."""
        return self.witnesses[contract_id]

    def __len__(self) -> int:
        return len(self.contract_ids)

    def __contains__(self, contract_id: int) -> bool:
        return contract_id in self.contract_ids

    def __iter__(self):
        return iter(self.contract_ids)

    def __str__(self) -> str:
        names = ", ".join(self.contract_names) or "(none)"
        return (
            f"QueryResult({len(self.contract_ids)} contracts: {names}; "
            f"{self.stats.checked} checked of {self.stats.candidates} "
            f"candidates in {self.stats.total_seconds * 1000:.1f} ms)"
        )


@dataclass
class QueryOutcome(QueryResult):
    """The unified answer shape of the 1.3 query API.

    Extends :class:`QueryResult` (so every pre-1.3 consumer keeps
    working) with the budgeted-execution view:

    * ``verdicts`` maps **every candidate** contract id to its
      :class:`Verdict` — including the candidates that did not make it
      into ``contract_ids``;
    * ``maybe_ids`` / ``maybe_names`` are the budget-exhausted
      candidates under the ``MAYBE`` degradation policy: they survived
      the relational filter and the prefilter, so the exact answer is
      unknown but plausible;
    * ``degraded`` is True exactly when some candidate's check was cut
      short — a degraded answer satisfies
      ``exact_permitted ⊆ contract_ids ∪ maybe_ids`` and
      ``contract_ids ⊆ exact_permitted`` (checks that completed are
      exact).
    """

    verdicts: dict = field(default_factory=dict)
    maybe_ids: tuple[int, ...] = ()
    maybe_names: tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        return self.stats.degraded

    def verdict_for(self, contract_id: int) -> Verdict:
        """The verdict of one candidate (KeyError for non-candidates)."""
        return self.verdicts[contract_id]

    def __str__(self) -> str:
        base = super().__str__().replace("QueryResult", "QueryOutcome", 1)
        if not self.degraded:
            return base
        return (
            base[:-1]
            + f"; DEGRADED: {self.stats.timed_out} timed out, "
            + f"{self.stats.skipped} skipped, "
            + f"{len(self.maybe_ids)} maybe)"
        )
