"""Query-side objects: the result of a broker query and its statistics.

The paper's runtime module "takes as input a query workload text file and
outputs statistics regarding their evaluation" (§7.1); the per-phase
timings recorded here are exactly the quantities its Figures 5 and 6
aggregate (query LTL-to-BA conversion + candidate selection + permission
checks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..ltl.ast import Formula


@dataclass
class QueryStats:
    """Per-query timing and work counters.

    All durations are seconds.  ``scan_time`` in the paper's terminology
    is the total of an unoptimized evaluation; here ``total_time`` plays
    that role when both optimizations are disabled.
    """

    translation_seconds: float = 0.0  # cache-lookup time on a cache hit
    prefilter_seconds: float = 0.0
    selection_seconds: float = 0.0
    permission_seconds: float = 0.0
    total_seconds: float = 0.0
    database_size: int = 0
    relational_matches: int = 0
    candidates: int = 0
    checked: int = 0
    permitted: int = 0
    used_prefilter: bool = False
    used_projections: bool = False
    cache_hit: bool = False
    pruning_condition: str = ""

    @property
    def pruning_ratio(self) -> float:
        """Fraction of the (relationally matching) database pruned away
        before the permission algorithm ran."""
        if self.relational_matches == 0:
            return 0.0
        return 1.0 - self.candidates / self.relational_matches


@dataclass
class QueryResult:
    """The broker's answer to one temporal query.

    ``witnesses`` is populated only when the query ran with
    ``explain=True``: it maps each returned contract id to a
    simultaneous-lasso witness whose :meth:`to_run` produces a concrete
    allowed sequence satisfying the query — the evidence a customer
    would want to see.
    """

    formula: Formula
    contract_ids: tuple[int, ...]
    contract_names: tuple[str, ...]
    stats: QueryStats = field(default_factory=QueryStats)
    witnesses: dict = field(default_factory=dict)

    def witness_for(self, contract_id: int):
        """The witness for one returned contract (KeyError if the query
        did not run with ``explain=True`` or the contract not returned)."""
        return self.witnesses[contract_id]

    def __len__(self) -> int:
        return len(self.contract_ids)

    def __contains__(self, contract_id: int) -> bool:
        return contract_id in self.contract_ids

    def __iter__(self):
        return iter(self.contract_ids)

    def __str__(self) -> str:
        names = ", ".join(self.contract_names) or "(none)"
        return (
            f"QueryResult({len(self.contract_ids)} contracts: {names}; "
            f"{self.stats.checked} checked of {self.stats.candidates} "
            f"candidates in {self.stats.total_seconds * 1000:.1f} ms)"
        )
