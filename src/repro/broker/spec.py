"""Declarative query documents: the serializable query API.

A :class:`QuerySpec` is a whole broker query as data — the LTL query
text, the relational filter, and the execution options — loadable from
a JSON (or YAML, when PyYAML is importable) document::

    {
      "query": "F(missedFlight && F(refund || dateChange))",
      "filter": [["price", "<=", 500], ["route", "==", "SAN-NYC"]],
      "options": {"use_planner": true, "deadline_seconds": 0.5}
    }

and executed directly: ``db.query(QuerySpec.from_file("spec.json"))``
(the ``contract-broker query --spec`` and ``explain --spec`` commands
are thin wrappers over exactly this).  Filter entries may equivalently
be ``{"attribute": ..., "op": ..., "value": ...}`` mappings.

Everything round-trips: the filter is the serializable condition AST of
:mod:`repro.broker.relational`, the options map onto
:class:`~repro.broker.options.QueryOptions` fields, and
:meth:`QuerySpec.to_dict` emits only non-default options, so a spec
survives ``from_dict(to_dict(spec))`` unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from ..errors import BrokerError
from .options import Degradation, QueryOptions
from .relational import MATCH_ALL, AttributeFilter

#: QueryOptions fields a spec's ``options`` mapping may set (the
#: JSON-able subset — programmatic fields like ``planner`` and
#: ``contract_ids`` stay out of the document format).
SPEC_OPTION_KEYS = frozenset({
    "use_prefilter",
    "use_projections",
    "use_encoded",
    "use_planner",
    "stage_order",
    "explain",
    "deadline_seconds",
    "contract_deadline_seconds",
    "step_budget",
    "budget_check_interval",
    "degradation",
    "workers",
})

_SPEC_KEYS = frozenset({"query", "filter", "options"})


@dataclass(frozen=True)
class QuerySpec:
    """One broker query as a self-contained, serializable document."""

    query: str
    filter: AttributeFilter = MATCH_ALL
    options: QueryOptions = QueryOptions()

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "QuerySpec":
        """Build a spec from a ``{"query", "filter", "options"}``
        document; raises :class:`~repro.errors.BrokerError` on unknown
        keys or malformed entries (a typo'd option must not silently run
        an unconfigured query)."""
        if not isinstance(doc, Mapping):
            raise BrokerError(
                f"query spec must be a mapping, got {type(doc).__name__}"
            )
        unknown = set(doc) - _SPEC_KEYS
        if unknown:
            raise BrokerError(
                f"unknown query-spec key(s) {sorted(unknown)}; expected "
                f"{sorted(_SPEC_KEYS)}"
            )
        query = doc.get("query")
        if not isinstance(query, str) or not query.strip():
            raise BrokerError(
                "query spec needs a non-empty LTL 'query' string"
            )
        attribute_filter = AttributeFilter.from_list(doc.get("filter") or [])
        options = cls._options_from_doc(doc.get("options") or {})
        return cls(query=query, filter=attribute_filter, options=options)

    @staticmethod
    def _options_from_doc(doc: Mapping[str, Any]) -> QueryOptions:
        if not isinstance(doc, Mapping):
            raise BrokerError(
                f"query-spec 'options' must be a mapping, got "
                f"{type(doc).__name__}"
            )
        unknown = set(doc) - SPEC_OPTION_KEYS
        if unknown:
            raise BrokerError(
                f"unknown query option(s) {sorted(unknown)}; expected a "
                f"subset of {sorted(SPEC_OPTION_KEYS)}"
            )
        fields = dict(doc)
        if "degradation" in fields:
            value = fields["degradation"]
            try:
                fields["degradation"] = Degradation(value)
            except ValueError:
                raise BrokerError(
                    f"unknown degradation policy {value!r}; expected one "
                    f"of {[d.value for d in Degradation]}"
                ) from None
        try:
            return QueryOptions(**fields)
        except (TypeError, ValueError) as exc:
            raise BrokerError(f"invalid query options: {exc}") from exc

    @classmethod
    def from_file(cls, path) -> "QuerySpec":
        """Load a spec from a JSON file (YAML for ``.yaml``/``.yml``
        paths, when PyYAML is available)."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise BrokerError(f"cannot read query spec {path}: {exc}") from exc
        if path.suffix.lower() in (".yaml", ".yml"):
            try:
                import yaml
            except ImportError:
                raise BrokerError(
                    f"cannot load {path}: PyYAML is not installed; use a "
                    "JSON spec instead"
                ) from None
            try:
                doc = yaml.safe_load(text)
            except yaml.YAMLError as exc:
                raise BrokerError(
                    f"malformed YAML query spec {path}: {exc}"
                ) from exc
        else:
            try:
                doc = json.loads(text)
            except json.JSONDecodeError as exc:
                raise BrokerError(
                    f"malformed JSON query spec {path}: {exc}"
                ) from exc
        return cls.from_dict(doc)

    def to_dict(self) -> dict:
        """The JSON-able document form (only non-default options are
        emitted, so ``from_dict`` round-trips)."""
        doc: dict[str, Any] = {"query": self.query}
        if self.filter.conditions:
            doc["filter"] = self.filter.to_list()
        defaults = QueryOptions()
        options: dict[str, Any] = {}
        for key in sorted(SPEC_OPTION_KEYS):
            value = getattr(self.options, key)
            if value != getattr(defaults, key):
                options[key] = (
                    value.value if isinstance(value, Degradation) else value
                )
        if options:
            doc["options"] = options
        return doc

    def to_options(self) -> QueryOptions:
        """The effective :class:`QueryOptions` — the spec's options with
        its filter folded in."""
        return self.options.evolve(attribute_filter=self.filter)
