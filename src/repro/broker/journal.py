"""The broker's write-ahead journal: crash-safe mutation durability.

The §7.4 experiments make registration the expensive side of the broker
(an 11-hour projection precomputation on the paper's hardware), and the
snapshot layer (:mod:`repro.broker.persist`) already makes *saved* state
cheap to restore — but a crash between saves lost every mutation since
the last :func:`~repro.broker.persist.save_database`.  This module
closes that window with the standard database answer, a write-ahead
journal:

* every acknowledged mutation (``register``/``deregister``/
  ``adopt_index``/configuration change) appends one JSON record to
  ``journal.jsonl`` beside the snapshot, flushed and ``fsync``'d before
  the mutation call returns — kill-9 at any instant loses at most the
  mutation that had not yet been acknowledged;
* :func:`open_database` restores the snapshot (if any) and **replays**
  the journal tail on top of it, re-deriving each mutation's artifacts
  deterministically;
* :func:`~repro.broker.persist.save_database` **compacts** the journal
  once the snapshot safely holds its records (epoch handshake below).

Record format — one JSON object per line, e.g.::

    {"ck": "9f2a…", "data": {…}, "op": "register", "seq": 3}

``ck`` is a SHA-256 prefix over the rest of the record, so every line is
independently verifiable.  A torn tail (the crash happened mid-write) is
detected by JSON/checksum/sequence failure and *truncated away* on open:
everything before it was individually fsync'd and replays; nothing after
it can be trusted.  This is what makes recovery prefix-consistent — no
partial mutation is ever visible.

Epoch handshake with the snapshot: the manifest records the
``journal_epoch`` it was saved under, and the journal's header record
carries the journal's own epoch.

* journal epoch == manifest epoch → the tail holds post-snapshot
  mutations: replay it;
* journal epoch <  manifest epoch → the crash hit between manifest
  write and journal compaction; every record is already in the
  snapshot: discard the tail (and compact);
* journal epoch >  manifest epoch → the snapshot was rolled back or
  copied stale; replaying could reference contracts the snapshot does
  not hold: discard with a loud warning rather than corrupt.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..core import faults
from ..errors import JournalError, ReproError
from .database import BrokerConfig, ContractDatabase

JOURNAL_FILE = "journal.jsonl"

#: Operations a journal may hold. ``open`` is the header; the rest are
#: mutations replayed in order.
KNOWN_OPS = frozenset(
    {"open", "register", "deregister", "adopt_index", "config"}
)


@dataclass(frozen=True)
class JournalRecord:
    """One parsed, checksum-verified journal line."""

    seq: int
    op: str
    data: dict


@dataclass(frozen=True)
class JournalTail:
    """What :meth:`Journal.read_from` observed past a byte offset.

    ``end_offset`` is the position just past the last *verified* record
    — the next ``read_from`` call should resume there.  ``torn`` means
    bytes past ``end_offset`` failed verification (most often a record
    the writer had not finished flushing); a reader must stop before
    them and retry from ``end_offset`` later, never consume them.
    """

    #: verified mutation records in order (the header is not included)
    records: tuple[JournalRecord, ...]
    #: the byte offset the read started at
    start_offset: int
    #: the offset just past the last verified record
    end_offset: int
    #: the header record's epoch, when the read started at offset 0
    #: (``None`` otherwise — the header lives at the head of the file)
    epoch: int | None
    #: whether unverifiable bytes follow ``end_offset``
    torn: bool
    #: the file size at read time
    file_size: int


@dataclass
class JournalReplayReport:
    """What :func:`open_database` replayed versus discarded.

    Attached to the returned database as ``db.journal_report``.
    """

    epoch: int = 0
    replayed: int = 0
    #: records discarded because the snapshot already contained them
    #: (journal epoch behind the manifest's)
    discarded_stale: int = 0
    #: bytes truncated off a torn tail on open
    torn_bytes: int = 0
    #: lines dropped by checksum/sequence verification
    torn_records: int = 0
    warnings: list = field(default_factory=list)
    replay_seconds: float = 0.0


def _checksum(doc: dict) -> str:
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _encode(seq: int, op: str, data: dict) -> bytes:
    doc = {"seq": seq, "op": op, "data": data}
    try:
        doc["ck"] = _checksum({"seq": seq, "op": op, "data": data})
        line = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise JournalError(
            f"journal record {op!r} is not JSON-serializable: {exc}"
        ) from exc
    return line.encode("utf-8") + b"\n"


class Journal:
    """An append-only, fsync'd mutation log beside a snapshot directory.

    Use :meth:`open` — it scans an existing file, verifies every line,
    and self-heals a torn tail by truncating it (recording how much was
    dropped on :attr:`torn_bytes` / :attr:`torn_records`).
    """

    def __init__(self, path: Path, *, epoch: int, records: list[JournalRecord],
                 torn_bytes: int = 0, torn_records: int = 0):
        self.path = path
        self.epoch = epoch
        #: verified mutation records (the header is not included)
        self.tail = records
        self.torn_bytes = torn_bytes
        self.torn_records = torn_records
        #: the configuration dict carried by the header record, if any
        self.header_config: dict | None = None
        self._next_seq = (records[-1].seq + 1) if records else 1
        self._fh = None

    # -- construction -----------------------------------------------------------------

    @classmethod
    def open(cls, path: str | Path, *, epoch: int = 0,
             config: BrokerConfig | None = None) -> "Journal":
        """Open (or create) the journal at ``path``.

        A missing file is created with a fresh header at ``epoch``.  An
        existing file is scanned; its header's epoch wins over the
        ``epoch`` argument, and any torn tail is truncated in place.
        """
        path = Path(path)
        if not path.exists():
            journal = cls(path, epoch=epoch, records=[])
            journal._write_header(config)
            return journal

        raw = path.read_bytes()
        records: list[JournalRecord] = []
        header_epoch = epoch
        header_config = None
        good_bytes = 0
        torn_records = 0
        offset = 0
        expected_seq = 0
        for line in raw.split(b"\n"):
            line_span = len(line) + 1  # the split-off newline
            if not line:
                offset += line_span
                continue
            if offset + len(line) >= len(raw) and not raw.endswith(b"\n"):
                # unterminated final line: torn mid-write
                torn_records += 1
                break
            record = cls._decode(line)
            if record is None or record.seq != expected_seq:
                torn_records += 1
                break
            if record.op == "open":
                header_epoch = int(record.data.get("epoch", epoch))
                header_config = record.data.get("config")
            else:
                records.append(record)
            expected_seq += 1
            offset += line_span
            good_bytes = offset
        torn_bytes = len(raw) - good_bytes
        if torn_bytes:
            # self-heal: everything past the last verified record is
            # untrustworthy (and would desynchronize future appends)
            with open(path, "r+b") as fh:
                fh.truncate(good_bytes)
                fh.flush()
                os.fsync(fh.fileno())
        journal = cls(
            path, epoch=header_epoch, records=records,
            torn_bytes=torn_bytes, torn_records=torn_records,
        )
        journal.header_config = (
            header_config if isinstance(header_config, dict) else None
        )
        journal._next_seq = expected_seq if expected_seq > 0 else 1
        if good_bytes == 0:
            # nothing usable survived (even the header was torn)
            journal._next_seq = 0
            journal._write_header(config)
        return journal

    @staticmethod
    def _decode(line: bytes) -> JournalRecord | None:
        try:
            doc = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(doc, dict):
            return None
        ck = doc.get("ck")
        seq = doc.get("seq")
        op = doc.get("op")
        data = doc.get("data")
        if (
            not isinstance(seq, int)
            or not isinstance(op, str)
            or not isinstance(data, dict)
            or op not in KNOWN_OPS
        ):
            return None
        if ck != _checksum({"seq": seq, "op": op, "data": data}):
            return None
        return JournalRecord(seq=seq, op=op, data=data)

    # -- reader-side tailing ----------------------------------------------------------

    @classmethod
    def read_from(cls, path: str | Path, offset: int = 0, *,
                  expected_seq: int | None = None) -> JournalTail:
        """Read verified records starting at byte ``offset`` — the
        replication tail API.

        Unlike :meth:`open`, this **never mutates the file**: it is safe
        against a journal another process is actively appending to.  A
        torn last record (partially flushed by the writer, or cut by a
        crash) simply is not consumed — ``end_offset`` stops before it
        and ``torn`` is set, so the reader resumes from the same place
        once the writer completes (or heals) the record.

        ``expected_seq`` pins the sequence number the first record must
        carry (a replica passes its cursor's next sequence); ``None``
        accepts whatever contiguous run starts at ``offset``.  When the
        read starts at offset 0, the header record is consumed (not
        returned) and its epoch is reported on :attr:`JournalTail.epoch`.
        """
        path = Path(path)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return JournalTail(
                records=(), start_offset=offset, end_offset=offset,
                epoch=None, torn=False, file_size=0,
            )
        offset = max(0, min(offset, len(raw)))
        epoch: int | None = None
        records: list[JournalRecord] = []
        position = offset
        good = offset
        torn = False
        for line in raw[offset:].split(b"\n"):
            line_span = len(line) + 1
            if not line:
                position += line_span
                if position <= len(raw):
                    good = position
                continue
            if position + len(line) >= len(raw) and not raw.endswith(b"\n"):
                torn = True  # unterminated final line: mid-flush
                break
            record = cls._decode(line)
            if record is None:
                torn = True
                break
            if record.op == "open" and position == 0:
                epoch = int(record.data.get("epoch", 0))
                expected_seq = record.seq + 1
            else:
                if expected_seq is not None and record.seq != expected_seq:
                    torn = True
                    break
                expected_seq = record.seq + 1
                records.append(record)
            position += line_span
            good = position
        return JournalTail(
            records=tuple(records), start_offset=offset, end_offset=good,
            epoch=epoch, torn=torn, file_size=len(raw),
        )

    @classmethod
    def read_header_epoch(cls, path: str | Path) -> int | None:
        """The header record's epoch, without reading the whole file
        (``None`` when the file is missing or its header is torn).
        Replicas poll this to detect a leader compaction — the epoch
        bump that invalidates their byte cursor."""
        path = Path(path)
        try:
            with open(path, "rb") as fh:
                head = fh.read(65536)
        except OSError:
            return None
        newline = head.find(b"\n")
        if newline < 0:
            return None
        record = cls._decode(head[:newline])
        if record is None or record.op != "open":
            return None
        return int(record.data.get("epoch", 0))

    # -- appending --------------------------------------------------------------------

    def _handle(self):
        if self._fh is None or self._fh.closed:
            self._fh = open(self.path, "ab")
        return self._fh

    def _write_record(self, op: str, data: dict) -> int:
        seq = self._next_seq
        payload = _encode(seq, op, data)
        faults.hit("journal.append", op=op, seq=seq)
        fh = self._handle()
        try:
            fh.write(payload)
            fh.flush()
            faults.hit("journal.fsync", op=op, seq=seq)
            os.fsync(fh.fileno())
        except OSError as exc:
            raise JournalError(
                f"journal append failed for {op!r}: {exc}"
            ) from exc
        self._next_seq = seq + 1
        return seq

    def _write_header(self, config: BrokerConfig | None) -> None:
        data: dict = {"epoch": self.epoch}
        if config is not None:
            data["config"] = _config_to_dict(config)
            self.header_config = data["config"]
        self._next_seq = 0
        self._write_record("open", data)

    def append(self, op: str, data: dict) -> int:
        """Durably append one mutation record; returns its sequence
        number.  The record is flushed and fsync'd before returning —
        this is the acknowledgement point of the crash-safety
        contract."""
        if op not in KNOWN_OPS or op == "open":
            raise JournalError(f"unknown journal operation {op!r}")
        seq = self._write_record(op, data)
        self.tail.append(JournalRecord(seq=seq, op=op, data=data))
        return seq

    # -- compaction -------------------------------------------------------------------

    def compact(self, epoch: int, config: BrokerConfig | None = None) -> None:
        """Atomically replace the journal with a fresh header at
        ``epoch`` — called once a snapshot safely holds every tail
        record (write the manifest first, then compact)."""
        faults.hit("journal.compact", epoch=epoch)
        self.close()
        tmp = self.path.with_name(f".{self.path.name}.{os.getpid()}.tmp")
        data: dict = {"epoch": epoch}
        if config is not None:
            data["config"] = _config_to_dict(config)
            self.header_config = data["config"]
        with open(tmp, "wb") as fh:
            fh.write(_encode(0, "open", data))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        _fsync_directory(self.path.parent)
        self.epoch = epoch
        self.tail = []
        self._next_seq = 1

    def _rewrite(self) -> None:
        """Rewrite the file as header + the current (renumbered) tail —
        used when replay drops unapplicable records, so the file never
        disagrees with what the database actually replayed."""
        self.close()
        self.tail = [
            JournalRecord(seq=i, op=r.op, data=r.data)
            for i, r in enumerate(self.tail, start=1)
        ]
        tmp = self.path.with_name(f".{self.path.name}.{os.getpid()}.tmp")
        with open(tmp, "wb") as fh:
            fh.write(_encode(0, "open", {"epoch": self.epoch}))
            for record in self.tail:
                fh.write(_encode(record.seq, record.op, record.data))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        _fsync_directory(self.path.parent)
        self._next_seq = len(self.tail) + 1

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()
        self._fh = None

    # -- introspection ----------------------------------------------------------------

    def latest_config(self) -> dict | None:
        """The most recent configuration the journal knows: the last
        ``config`` record's payload, if any (configuration changes are
        journaled so an argument-less reopen uses the latest one)."""
        for record in reversed(self.tail):
            if record.op == "config":
                return record.data.get("config")
        return self.header_config

    def __len__(self) -> int:
        return len(self.tail)


def _fsync_directory(directory: Path) -> None:
    """Best-effort directory fsync (durability of the rename itself);
    platforms that cannot open directories skip it silently."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def _config_to_dict(config: BrokerConfig) -> dict:
    import dataclasses

    return {
        f.name: getattr(config, f.name)
        for f in dataclasses.fields(BrokerConfig)
    }


def _config_from_dict(doc: dict) -> BrokerConfig:
    import dataclasses

    names = {f.name for f in dataclasses.fields(BrokerConfig)}
    return BrokerConfig(**{k: v for k, v in doc.items() if k in names})


# -- the runtime entry point ----------------------------------------------------------


def open_database(
    directory: str | Path,
    config: BrokerConfig | None = None,
) -> ContractDatabase:
    """Open a crash-safe, journaled database rooted at ``directory``.

    Restores the snapshot if one exists (via
    :func:`~repro.broker.persist.load_database`), replays the journal
    tail on top of it, and attaches the journal so every further
    mutation is durably logged.  On a directory with neither snapshot
    nor journal, starts an empty journaled database.

    The returned database carries a :class:`JournalReplayReport` as
    ``db.journal_report`` (and, after a snapshot restore, the usual
    ``db.load_report``).
    """
    from .persist import _CONTRACTS_FILE, load_database

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    journal_path = directory / JOURNAL_FILE
    manifest_path = directory / _CONTRACTS_FILE

    report = JournalReplayReport()
    start = time.perf_counter()

    manifest_epoch = 0
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            manifest_epoch = int(manifest.get("journal_epoch", 0))
        except (json.JSONDecodeError, TypeError, ValueError):
            manifest_epoch = 0

    journal = Journal.open(journal_path, epoch=manifest_epoch, config=config)
    report.epoch = journal.epoch
    report.torn_bytes = journal.torn_bytes
    report.torn_records = journal.torn_records
    if journal.torn_records:
        report.warnings.append(
            f"journal: truncated a torn tail ({journal.torn_records} "
            f"record(s), {journal.torn_bytes} byte(s))"
        )

    # Configuration precedence: explicit argument > journaled config
    # change > manifest/default.
    effective_config = config
    if effective_config is None:
        config_doc = journal.latest_config()
        if config_doc is not None:
            effective_config = _config_from_dict(config_doc)

    if manifest_path.exists():
        db = load_database(directory, effective_config)
    else:
        db = ContractDatabase(effective_config)

    if journal.epoch == manifest_epoch:
        _replay(db, journal, report)
    elif journal.epoch < manifest_epoch:
        report.discarded_stale = len(journal.tail)
        report.warnings.append(
            f"journal: epoch {journal.epoch} is behind the snapshot's "
            f"{manifest_epoch}; its {len(journal.tail)} record(s) are "
            "already in the snapshot (discarded)"
        )
        journal.compact(manifest_epoch, db.config)
    else:
        report.discarded_stale = len(journal.tail)
        report.warnings.append(
            f"journal: epoch {journal.epoch} is ahead of the snapshot's "
            f"{manifest_epoch} (stale or rolled-back snapshot?); "
            f"discarding {len(journal.tail)} unreplayable record(s)"
        )
        journal.compact(manifest_epoch, db.config)

    report.replay_seconds = time.perf_counter() - start
    db.metrics.inc("journal.replayed", report.replayed)
    if report.torn_records:
        db.metrics.inc("journal.torn_records", report.torn_records)
    if report.discarded_stale:
        db.metrics.inc("journal.discarded_stale", report.discarded_stale)
    db.journal_report = report
    db.attach_journal(journal)
    return db


def _replay(db: ContractDatabase, journal: Journal,
            report: JournalReplayReport) -> None:
    """Re-apply the journal tail onto ``db``, stopping (and truncating
    the rest away) at the first record that fails to apply — a
    replayable prefix is the crash-safety contract; an unreplayable
    middle would leave later records referencing state that never
    materialized."""
    applied = 0
    for position, record in enumerate(journal.tail):
        try:
            if record.op == "register":
                db.register(
                    record.data["name"],
                    list(record.data["clauses"]),
                    record.data.get("attributes") or {},
                )
            elif record.op == "deregister":
                db.deregister(int(record.data["contract_id"]))
            elif record.op == "adopt_index":
                # replay rebuilds the index incrementally through the
                # register/deregister records, which is semantically the
                # index the adopted snapshot held at this point
                pass
            elif record.op == "config":
                # consumed during the pre-scan (latest_config); the
                # database was already constructed with the newest one
                pass
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            report.warnings.append(
                f"journal: record seq={record.seq} op={record.op!r} "
                f"failed to replay ({type(exc).__name__}: {exc}); "
                f"dropping it and the {len(journal.tail) - position - 1} "
                "record(s) after it"
            )
            del journal.tail[position:]
            journal._rewrite()
            break
        applied += 1
    report.replayed = applied
