"""Runtime monitoring of contracts against unfolding event histories.

The related work the paper builds on (§8, [16][19]) monitors *live*
contracts: as events actually happen, check whether the contract can
still be honored.  The broker's data model makes this a small addition —
a contract's Büchi automaton is run *nondeterministically* over the
observed snapshots, tracking the set of states consistent with the
history:

* if the set becomes empty, the history already **violates** the
  contract (no allowed sequence extends it);
* otherwise the contract is still **satisfiable**: some state in the set
  can reach an accepting cycle (states that cannot are pruned eagerly,
  so emptiness is detected as early as possible).

The monitor can also report which *queries* remain possible futures —
e.g. "after what just happened, can this ticket still be refunded?" —
by checking permission of the query against the contract restricted to
continuations of the history.  That restriction is expressed directly on
the automaton: the reachable state set becomes the new initial frontier.
"""

from __future__ import annotations

from typing import Iterable

from ..automata.buchi import BuchiAutomaton, Transition
from ..automata import graph
from ..core.permission import permits
from ..errors import MonitorError
from ..ltl.runs import Snapshot
from ..stream.options import MonitorOptions, MonitorStatus
from .contract import Contract

__all__ = ["ContractMonitor", "MonitorOptions", "MonitorStatus"]


class ContractMonitor:
    """Tracks one contract against an unfolding sequence of snapshots.

    >>> monitor = ContractMonitor.for_contract(contract)
    >>> monitor.advance({"purchase"})
    >>> monitor.advance({"missedFlight"})
    >>> monitor.status
    <MonitorStatus.ACTIVE: 'active'>
    >>> monitor.can_still("F refund")
    True
    """

    def __init__(self, ba: BuchiAutomaton,
                 vocabulary: frozenset[str] | None = None,
                 options: MonitorOptions | None = None):
        self._ba = ba
        self._vocabulary = vocabulary if vocabulary is not None else ba.events()
        self._options = options or MonitorOptions()
        # states that can still contribute to an accepting run
        reachable = graph.reachable_from(ba.initial, ba.successor_states)
        cores = graph.states_on_accepting_cycles(
            reachable, ba.successor_states, ba.is_final
        )
        self._live = graph.backward_reachable(
            cores, reachable, ba.successor_states
        )
        self._frontier: frozenset = (
            frozenset({ba.initial}) if ba.initial in self._live else frozenset()
        )
        self._history: list[Snapshot] = []
        #: index of the first violating snapshot; ``-1`` when the
        #: contract is unsatisfiable before any event; ``None`` while ACTIVE
        self._violation_index: int | None = (
            None if self._frontier else -1
        )
        #: observed events outside the contract vocabulary (counting mode)
        self.unknown_events = 0

    @classmethod
    def for_contract(cls, contract: Contract,
                     options: MonitorOptions | None = None) -> "ContractMonitor":
        """Monitor a registered broker contract."""
        return cls(contract.ba, contract.vocabulary, options)

    # -- observation ------------------------------------------------------------

    def advance(self, snapshot: Iterable[str]) -> MonitorStatus:
        """Consume one observed snapshot and return the updated status.

        Violation is absorbing *and terminal for bookkeeping*: once the
        frontier is empty further snapshots return immediately — the
        history stops growing (a violated monitor on an unbounded stream
        must not leak) and unknown events are no longer accounted.

        Events outside the contract vocabulary are counted on
        :attr:`unknown_events` (they cannot affect the verdict — labels
        only cite vocabulary events) or, under
        ``MonitorOptions.strict_vocabulary``, rejected with
        :class:`~repro.errors.MonitorError` before any state changes.
        """
        if not self._frontier:
            return MonitorStatus.VIOLATED
        snap = frozenset(snapshot)
        unknown = snap - self._vocabulary
        if unknown:
            if self._options.strict_vocabulary:
                raise MonitorError(
                    f"snapshot cites events outside the contract "
                    f"vocabulary: {sorted(unknown)}"
                )
            self.unknown_events += len(unknown)
        self._history.append(snap)
        next_frontier: set = set()
        for state in self._frontier:
            for label, dst in self._ba.successors(state):
                if dst in self._live and label.satisfied_by(snap):
                    next_frontier.add(dst)
        self._frontier = frozenset(next_frontier)
        if not self._frontier:
            self._violation_index = len(self._history) - 1
        return self.status

    def advance_all(self, snapshots: Iterable[Iterable[str]]) -> MonitorStatus:
        """Consume a batch of snapshots, stopping at the first one that
        violates the contract (the remainder is not consumed); its
        position is then available as :attr:`violation_index`."""
        for snap in snapshots:
            if self.advance(snap) is MonitorStatus.VIOLATED:
                break
        return self.status

    # -- verdicts ----------------------------------------------------------------

    @property
    def status(self) -> MonitorStatus:
        if not self._frontier:
            return MonitorStatus.VIOLATED
        return MonitorStatus.ACTIVE

    @property
    def history(self) -> tuple[Snapshot, ...]:
        return tuple(self._history)

    @property
    def violation_index(self) -> int | None:
        """Index (into :attr:`history`) of the first violating snapshot;
        ``-1`` when the contract was unsatisfiable before any event;
        ``None`` while the contract is still ACTIVE."""
        return self._violation_index

    @property
    def possible_states(self) -> frozenset:
        """The automaton states consistent with the history (live only)."""
        return self._frontier

    def can_still(self, query) -> bool:
        """Can the observed history still be extended to one that the
        contract allows *and* that satisfies ``query`` from here on?

        ``query`` is an LTL string/formula or a prebuilt query BA; it is
        interpreted over the *future* (the suffix after the history), and
        the same permission semantics as the broker applies: the future
        uses only contract-vocabulary events.
        """
        query_ba = _as_query_ba(query)
        if not self._frontier:
            return False
        continuation = self._continuation_automaton()
        return permits(continuation, query_ba, self._vocabulary)

    def _continuation_automaton(self) -> BuchiAutomaton:
        """The contract BA with the current frontier as initial states
        (joined under a fresh initial that copies their first steps).

        The fresh key is grown until it is provably disjoint from the
        automaton's own state keys — contracts restored from snapshots
        or renamed can legitimately contain a ``("monitor-init",)``
        state, and a collision would silently merge the continuation's
        entry point with a real state."""
        fresh = ("monitor-init",)
        while fresh in self._ba.states:
            fresh = fresh + ("monitor-init",)
        transitions = [
            Transition(fresh, label, dst)
            for state in self._frontier
            for label, dst in self._ba.successors(state)
            if dst in self._live
        ]
        transitions.extend(
            t for t in self._ba.transitions()
            if t.src in self._live and t.dst in self._live
        )
        states = set(self._live) | {fresh}
        final = self._ba.final & self._live
        return BuchiAutomaton(states, fresh, transitions, final)


def _as_query_ba(query) -> BuchiAutomaton:
    from ..automata.ltl2ba import translate
    from ..ltl.ast import Formula
    from ..ltl.parser import parse

    if isinstance(query, BuchiAutomaton):
        return query
    if isinstance(query, Formula):
        return translate(query)
    return translate(parse(query))
