"""The query compilation cache.

Compiling a query is the fixed per-query cost of the paper's runtime
module: LTL→BA translation (§3), the query BA's literal set (which keys
projection selection, §5.2), and the pruning condition extracted by
Algorithm 1 (§4.1).  None of those depend on the database contents — only
on the query formula — so a broker serving a repeated workload (every
``benchmarks/bench_*.py`` sweep, and any production query mix with
popular queries) should pay them once per *distinct* query, not once per
call.

:class:`QueryCompilationCache` is an LRU map from the **normalized**
formula text to a :class:`CompiledQuery` record.  Normalization reuses
the translator's own front end — :func:`repro.ltl.rewrite.simplify`
(NNF + smart-constructor simplification) rendered back through
:func:`repro.ltl.printer.format_formula` — so syntactically different but
rewrite-equivalent queries (``F a`` and ``true U a``, say) share one
entry and one translation.

The cache is thread-safe (``query_many`` evaluates workloads from a
thread pool) and keeps hit/miss/eviction counters that the broker's
metrics registry and the ``contract-broker metrics`` CLI surface.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..automata.buchi import BuchiAutomaton
from ..automata.encode import EncodedAutomaton, encode_automaton
from ..automata.ltl2ba import DEFAULT_STATE_BUDGET, translate
from ..index.condition import Condition
from ..index.pruning import pruning_condition
from ..ltl.ast import Formula
from ..ltl.printer import format_formula
from ..ltl.rewrite import simplify

#: Default number of distinct compiled queries kept (LRU).
DEFAULT_CACHE_CAPACITY = 128

#: Default number of chosen query plans kept (LRU).
DEFAULT_PLAN_CACHE_CAPACITY = 256


def normalized_query_key(formula: Formula) -> str:
    """The cache key: the simplified-NNF rendering of ``formula``."""
    return format_formula(simplify(formula))


class CompiledQuery:
    """Everything the broker derives from a query formula alone.

    The pruning condition is materialized lazily — scan-mode queries
    (prefilter off) never need it — and cached on first use, so a warm
    entry serves all of translation, literal extraction and Algorithm 1
    for free.
    """

    __slots__ = ("formula", "key", "query_ba", "literals", "_condition",
                 "_encoded")

    def __init__(self, formula: Formula, key: str,
                 query_ba: BuchiAutomaton):
        self.formula = formula
        self.key = key
        self.query_ba = query_ba
        self.literals = query_ba.literals()
        self._condition: Condition | None = None
        self._encoded: EncodedAutomaton | None = None

    @property
    def condition(self) -> Condition:
        """The pruning condition of the query BA (computed on first use).

        Concurrent first accesses may both compute it; the function is
        deterministic, so either result is the same value and the benign
        race only costs duplicated work.
        """
        condition = self._condition
        if condition is None:
            condition = self._condition = pruning_condition(self.query_ba)
        return condition

    @property
    def encoded_query(self) -> EncodedAutomaton:
        """The flat int encoding of the query BA (computed on first use,
        same benign-race pattern as :attr:`condition`).  Encoded over the
        query's own events; :func:`repro.automata.encode.bind_query`
        rebases it onto each contract's vocabulary at check time."""
        encoded = self._encoded
        if encoded is None:
            encoded = self._encoded = encode_automaton(self.query_ba)
        return encoded

    @property
    def has_condition(self) -> bool:
        """Whether the pruning condition has been materialized yet."""
        return self._condition is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CompiledQuery({self.key!r}, "
                f"{self.query_ba.num_states} states)")


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time view of the cache counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per request; 0.0 before any request."""
        return self.hits / self.requests if self.requests else 0.0


class QueryCompilationCache:
    """LRU cache of :class:`CompiledQuery` records.

    Args:
        capacity: maximum distinct entries kept; ``0`` disables storage
            (every request compiles, nothing is retained — the counters
            still run, so a disabled cache reports a 0% hit rate rather
            than lying).
        state_budget: translation state cap, forwarded to
            :func:`repro.automata.ltl2ba.translate`.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY,
                 state_budget: int = DEFAULT_STATE_BUDGET):
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.state_budget = state_budget
        self._entries: OrderedDict[str, CompiledQuery] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def compile(self, formula: Formula) -> tuple[CompiledQuery, bool]:
        """The compiled record for ``formula`` and whether it was a hit.

        Translation happens outside the lock (it can take milliseconds);
        if two threads race to compile the same new query, the first
        insertion wins and the loser adopts it, so a key never maps to
        two different automata.
        """
        key = normalized_query_key(formula)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry, True
            self._misses += 1
        query_ba = translate(formula, state_budget=self.state_budget)
        entry = CompiledQuery(formula, key, query_ba)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                return existing, False
            if self.capacity > 0:
                self._entries[key] = entry
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self._evictions += 1
        return entry, False

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )

    def clear(self) -> None:
        """Drop all entries (counters are kept — they are lifetime totals)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, formula: Formula) -> bool:
        with self._lock:
            return normalized_query_key(formula) in self._entries


class QueryPlanCache:
    """LRU cache of chosen :class:`~repro.broker.planner.QueryPlan`\\ s,
    living alongside the compilation cache.

    The database keys entries by ``(compiled-query key, attribute-filter
    cache key, statistics version, planner)``: distinct filters hash to
    distinct entries (the pre-1.8 callable filters could not be hashed
    at all, so every filter collided on one warm entry), and the
    statistics-version component means a register/deregister implicitly
    invalidates every cached plan — a stale plan can cost time, never
    answers, but there is no reason to keep one.  Filters containing
    opaque legacy conditions have no cache key and are planned fresh on
    every query.
    """

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_CAPACITY):
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key):
        """The cached plan for ``key``, or ``None`` (counts the miss)."""
        with self._lock:
            plan = self._entries.get(key)
            if plan is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return plan
            self._misses += 1
            return None

    def put(self, key, plan) -> None:
        with self._lock:
            if self.capacity <= 0:
                return
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )

    def clear(self) -> None:
        """Drop all entries (counters are kept — they are lifetime
        totals)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
