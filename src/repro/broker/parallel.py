"""Parallel contract registration.

§7.4 of the paper: "Since the workload is completely parallel (each
contract is simplified independently), scaling the number of contracts
can be tackled by adding resources" — the authors ran their 11-hour
projection precomputation on three cores.  This module provides that
scaling knob: the expensive, purely functional per-contract work
(LTL→BA translation and projection-partition precomputation) runs in a
process pool, and only the cheap, stateful steps (index insertion, id
assignment) happen serially in the parent.

Usage::

    from repro.broker.parallel import register_many

    contracts = register_many(db, specs, workers=4)

Falls back to plain serial registration when ``workers <= 1`` or when a
worker pool cannot be created (restricted environments), so callers can
use it unconditionally.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from ..automata.buchi import BuchiAutomaton
from ..automata.ltl2ba import translate
from ..automata.serialize import automaton_from_dict, automaton_to_dict
from .contract import ContractSpec
from .database import ContractDatabase
from ..ltl.parser import parse
from ..ltl.printer import format_formula


def _translate_clauses(payload: tuple[list[str], int]) -> dict:
    """Worker: parse + conjoin + translate one contract's clauses.

    Text in, JSON-ready automaton out — keeps the inter-process payload
    small and version-stable.
    """
    clause_texts, state_budget = payload
    from ..ltl.ast import conj

    formula = conj([parse(text) for text in clause_texts])
    ba = translate(formula, state_budget=state_budget)
    return automaton_to_dict(ba)


def register_many(
    db: ContractDatabase,
    specs: Sequence[ContractSpec],
    workers: int = 1,
) -> list:
    """Register a batch of specs, translating in parallel.

    Returns the registered :class:`Contract` objects, in input order.
    Results are identical to serial registration (contract ids are
    assigned in input order by the parent process).
    """
    if workers <= 1 or len(specs) <= 1:
        return [db.register_spec(spec) for spec in specs]

    payloads = [
        (
            [format_formula(clause) for clause in spec.clauses],
            db.config.state_budget,
        )
        for spec in specs
    ]
    start = time.perf_counter()
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            documents = list(pool.map(_translate_clauses, payloads))
    except (OSError, PermissionError):  # pragma: no cover - sandboxed envs
        return [db.register_spec(spec) for spec in specs]
    translation_seconds = time.perf_counter() - start

    contracts = []
    for spec, document in zip(specs, documents):
        ba: BuchiAutomaton = automaton_from_dict(document)
        contracts.append(db.register_spec(spec, prebuilt_ba=ba))
    # The parent did not time the (parallel) translation; account for the
    # wall-clock cost so registration stats stay meaningful.
    db.registration_stats.translation_seconds += translation_seconds
    return contracts
