"""Parallel contract registration and batched query evaluation.

§7.4 of the paper: "Since the workload is completely parallel (each
contract is simplified independently), scaling the number of contracts
can be tackled by adding resources" — the authors ran their 11-hour
projection precomputation on three cores.  This module provides that
scaling knob on both sides of the broker:

* **registration** (:func:`register_many`) — the expensive, purely
  functional per-contract work (LTL→BA translation) runs in a *process*
  pool, and only the cheap, stateful steps (index insertion, id
  assignment) happen serially in the parent;
* **querying** (:func:`query_many`) — a workload of queries is evaluated
  with the per-contract permission checks fanned out over a *thread*
  pool (threads, not processes: the checks share the in-memory database
  and its lazily materialized projection quotients, and each check is
  independent — the query side of the same "completely parallel
  workload" observation).

Fault isolation (1.5): the batch path distinguishes **poison pills**
from **transient pool failures**.  A spec whose clauses fail to parse,
whose translation blows the state budget, or whose registration is
rejected is *quarantined* — recorded on the
:class:`~repro.broker.registration.RegistrationReport` (and on
``db.quarantine`` for later retry) with the exception that killed it,
while every healthy spec in the batch still registers.  A pool that
breaks (:class:`~concurrent.futures.process.BrokenProcessPool` on
worker OOM/crash, ``OSError`` in restricted sandboxes) is retried with
capped exponential backoff, re-submitting only the specs that have not
already been translated; if the pool keeps breaking, the leftovers fall
back to in-process translation.  Querying falls back the same way:
a thread pool that dies mid-workload resumes serially **from the first
unfinished query**, never re-counting the finished ones.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Mapping, Sequence

from ..automata.buchi import BuchiAutomaton
from ..automata.ltl2ba import translate
from ..automata.serialize import automaton_from_dict, automaton_to_dict
from ..core import faults
from ..core.retry import BackoffPolicy
from ..errors import ReproError, TranslationError
from ..ltl.ast import Formula
from ..ltl.parser import parse
from ..ltl.printer import format_formula
from .contract import ContractSpec
from .database import ContractDatabase
from .options import PrebuiltArtifacts, QueryOptions, coerce_query_options
from .query import QueryOutcome
from .registration import QuarantinedSpec, RegistrationReport
from .relational import AttributeFilter

#: Pool-level failure retries before the serial fallback.
DEFAULT_MAX_RETRIES = 2

#: First retry's backoff; doubles per retry, capped at 1 s.
DEFAULT_BACKOFF_SECONDS = 0.05

#: Pool retries follow the shared backoff shape (see
#: :mod:`repro.core.retry`) without jitter — a single local pool has
#: no herd to desynchronize, and jitter-free delays keep the existing
#: ``register_many`` timing contract exact.
_POOL_BACKOFF = BackoffPolicy(
    max_retries=DEFAULT_MAX_RETRIES,
    base_seconds=DEFAULT_BACKOFF_SECONDS,
    cap_seconds=1.0,
    jitter=0.0,
)


def _translate_clauses(payload: tuple[list[str], int]) -> dict:
    """Worker: parse + conjoin + translate one contract's clauses.

    Text in, JSON-ready automaton out — keeps the inter-process payload
    small and version-stable.
    """
    clause_texts, state_budget = payload
    from ..ltl.ast import conj

    formula = conj([parse(text) for text in clause_texts])
    ba = translate(formula, state_budget=state_budget)
    return automaton_to_dict(ba)


def _coerce_spec(item: "ContractSpec | Mapping") -> ContractSpec:
    """A ContractSpec from either form a batch may carry; clause parse
    errors surface here (and are quarantined by the caller)."""
    if isinstance(item, ContractSpec):
        return item
    name = item.get("name")
    if not isinstance(name, str) or not name:
        raise ReproError(f"spec document without a usable name: {item!r}")
    clauses = item.get("clauses")
    if not isinstance(clauses, (list, tuple)) or not clauses:
        raise ReproError(f"spec {name!r} has no clauses")
    parsed = tuple(
        parse(c) if isinstance(c, str) else c for c in clauses
    )
    return ContractSpec(
        name=name, clauses=parsed,
        attributes=dict(item.get("attributes") or {}),
    )


def _item_name(item) -> str:
    if isinstance(item, ContractSpec):
        return item.name
    if isinstance(item, Mapping):
        name = item.get("name")
        if isinstance(name, str):
            return name
    return "<unnamed>"


def _quarantine(db, report: RegistrationReport, entry: QuarantinedSpec):
    report.quarantined.append(entry)
    db.quarantine.add(entry)
    db.metrics.inc("register.quarantined")


def _register_one(
    db: ContractDatabase,
    report: RegistrationReport,
    spec: ContractSpec,
    ba: BuchiAutomaton | None,
) -> None:
    """Register one translated (or to-be-translated) spec, quarantining
    a failure instead of letting it poison the batch."""
    try:
        prebuilt = PrebuiltArtifacts(ba=ba) if ba is not None else None
        contract = db.register(spec, prebuilt=prebuilt)
    except TranslationError as exc:
        _quarantine(db, report, QuarantinedSpec(
            spec=spec, name=spec.name, error=exc, stage="translate",
        ))
    except ReproError as exc:
        _quarantine(db, report, QuarantinedSpec(
            spec=spec, name=spec.name, error=exc, stage="register",
        ))
    else:
        report.contracts.append(contract)


def register_many(
    db: ContractDatabase,
    specs: "Sequence[ContractSpec | Mapping]",
    workers: int = 1,
    *,
    max_retries: int = DEFAULT_MAX_RETRIES,
    backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
    _sleep=time.sleep,
) -> RegistrationReport:
    """Register a batch of specs, translating in parallel.

    ``specs`` may mix :class:`ContractSpec` objects and raw spec
    documents (``{"name": ..., "clauses": [LTL text, ...],
    "attributes": {...}}`` — the CLI spec-file shape); raw documents
    whose clauses fail to parse are quarantined rather than raised.

    Returns a :class:`RegistrationReport`: sequence-compatible with the
    registered :class:`Contract` objects in input order, plus the
    quarantined specs and the pool retry/fallback record.  Contract ids
    are assigned in input order by the parent process, so results are
    identical to serial registration for the healthy subset.

    Failure handling:

    * **poison pills** (parse error, state-budget blowout, registration
      rejection) are quarantined individually — also recorded on
      ``db.quarantine`` for a later :meth:`~repro.broker.registration.
      Quarantine.retry`;
    * **transient pool failures** (:class:`BrokenProcessPool`,
      ``OSError``/``PermissionError`` in sandboxed environments) are
      retried up to ``max_retries`` times with exponential backoff
      (``backoff_seconds``, doubled per retry, capped at 1 s),
      re-submitting only untranslated specs; persistent failure falls
      back to in-process translation for the leftovers.  Specs that
      already translated are **never** re-translated.

    The wall clock spent in the pool (including failed attempts) is
    accounted to ``registration_stats.translation_seconds`` so the
    stats stay consistent either way.
    """
    report = RegistrationReport()

    # normalize every item up front: parse-stage poison pills are
    # quarantined here and never reach the pool
    resolved: list[ContractSpec | None] = []
    for item in specs:
        try:
            resolved.append(_coerce_spec(item))
        except ReproError as exc:
            resolved.append(None)
            _quarantine(db, report, QuarantinedSpec(
                spec=None, name=_item_name(item), error=exc, stage="parse",
            ))

    healthy = [i for i, spec in enumerate(resolved) if spec is not None]

    if workers <= 1 or len(healthy) <= 1:
        for i in healthy:
            _register_one(db, report, resolved[i], ba=None)
        return report

    payloads = {
        i: (
            [format_formula(clause) for clause in resolved[i].clauses],
            db.config.state_budget,
        )
        for i in healthy
    }

    documents: dict[int, dict] = {}
    dead: set[int] = set()  # quarantined during the pool phase
    pending = list(healthy)
    policy = _POOL_BACKOFF if (
        max_retries == _POOL_BACKOFF.max_retries
        and backoff_seconds == _POOL_BACKOFF.base_seconds
    ) else BackoffPolicy(
        max_retries=max_retries, base_seconds=backoff_seconds,
        cap_seconds=1.0, jitter=0.0,
    )
    attempt = 0
    pool_start = time.perf_counter()
    while pending:
        broken = False
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    i: pool.submit(_translate_clauses, payloads[i])
                    for i in pending
                }
                faults.hit("register.pool", attempt=attempt)
                still_pending = []
                for i in pending:
                    try:
                        documents[i] = futures[i].result()
                    except (BrokenProcessPool, OSError) as exc:
                        # the pool died under this future; the spec
                        # itself is not implicated — retry it
                        still_pending.append(i)
                        broken = True
                    except ReproError as exc:
                        dead.add(i)
                        _quarantine(db, report, QuarantinedSpec(
                            spec=resolved[i], name=resolved[i].name,
                            error=exc, stage="translate",
                        ))
                    except Exception as exc:
                        # a worker exception that is not ours (pickling,
                        # recursion, ...) is deterministic for this spec
                        dead.add(i)
                        _quarantine(db, report, QuarantinedSpec(
                            spec=resolved[i], name=resolved[i].name,
                            error=exc, stage="translate",
                        ))
                pending = still_pending
        except (OSError, PermissionError, BrokenProcessPool):
            broken = True  # pool never came up (or died at submit time)
        if not pending or not broken:
            break
        attempt += 1
        if attempt > max_retries:
            # persistent pool failure: translate the leftovers in
            # process (inside db.register below), never re-translating
            # the documents already in hand
            report.pool_fallback = True
            db.metrics.inc("register.pool_fallback")
            break
        report.pool_retries += 1
        db.metrics.inc("register.pool_retries")
        _sleep(policy.delay(attempt))

    pool_seconds = time.perf_counter() - pool_start

    for i in healthy:
        if i in dead:
            continue
        spec = resolved[i]
        document = documents.get(i)
        ba = None
        if document is not None:
            try:
                ba = automaton_from_dict(document)
            except ReproError as exc:
                _quarantine(db, report, QuarantinedSpec(
                    spec=spec, name=spec.name, error=exc, stage="translate",
                ))
                continue
        # document is None only on the serial-fallback path:
        # _register_one translates in-process via db.register
        _register_one(db, report, spec, ba=ba)

    # The parent did not time the (parallel) translation; account the
    # pool wall clock so registration stats stay meaningful.
    db.registration_stats.translation_seconds += pool_seconds
    return report


def query_many(
    db: ContractDatabase,
    queries: Sequence[str | Formula],
    options: QueryOptions | AttributeFilter | None = None,
    **legacy,
) -> list[QueryOutcome]:
    """Evaluate a query workload, fanning permission checks over threads.

    Queries are compiled through the database's LRU cache (so a workload
    with repeats pays each distinct translation once) and evaluated in
    input order; with ``options.workers > 1`` each query's per-candidate
    permission checks run concurrently on one shared thread pool.  The
    returned :class:`QueryOutcome` objects are identical to serial
    :meth:`~repro.broker.database.ContractDatabase.query` calls — the
    pool's ``map`` preserves candidate order and every check is a pure
    function of (contract, query, budget).

    Budgets apply *per query*: each query in the workload gets a fresh
    deadline, so one pathological query degrades without starving the
    rest of the batch.  Under a deadline, a query's queued checks whose
    budget is already gone return ``SKIPPED`` immediately (cooperative
    cancellation), so pool slots free up quickly for the next query.

    A pool that cannot be created, or dies mid-workload, falls back to
    serial evaluation **resuming from the first unfinished query**:
    completed outcomes are kept, nothing is evaluated (or counted in
    ``repro.obs`` metrics) twice, and the ``query.pool_fallback``
    counter records the event.

    Deprecated pre-1.3 surface (still accepted, warns)::

        query_many(db, qs, workers=4, ...) -> query_many(db, qs,
                                                  QueryOptions(workers=4, ...))
    """
    options = coerce_query_options("query_many", options, legacy)

    if options.workers <= 1 or not queries:
        return [
            db._run_query(query, options, executor=None)
            for query in queries
        ]

    outcomes: list[QueryOutcome] = []
    try:
        with ThreadPoolExecutor(max_workers=options.workers) as pool:
            for index, query in enumerate(queries):
                faults.hit("query.pool", index=index)
                outcomes.append(
                    db._run_query(query, options, executor=pool)
                )
    except (OSError, RuntimeError):  # pool refused or died mid-workload
        db.metrics.inc("query.pool_fallback")
        for query in queries[len(outcomes):]:
            outcomes.append(db._run_query(query, options, executor=None))
    return outcomes
