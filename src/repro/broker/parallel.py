"""Parallel contract registration and batched query evaluation.

§7.4 of the paper: "Since the workload is completely parallel (each
contract is simplified independently), scaling the number of contracts
can be tackled by adding resources" — the authors ran their 11-hour
projection precomputation on three cores.  This module provides that
scaling knob on both sides of the broker:

* **registration** (:func:`register_many`) — the expensive, purely
  functional per-contract work (LTL→BA translation) runs in a *process*
  pool, and only the cheap, stateful steps (index insertion, id
  assignment) happen serially in the parent;
* **querying** (:func:`query_many`) — a workload of queries is evaluated
  with the per-contract permission checks fanned out over a *thread*
  pool (threads, not processes: the checks share the in-memory database
  and its lazily materialized projection quotients, and each check is
  independent — the query side of the same "completely parallel
  workload" observation).

Both fall back to plain serial execution when ``workers <= 1`` or when a
pool cannot be created or breaks (restricted environments, worker
crashes), so callers can use them unconditionally; parallel results are
identical to serial ones and are returned in input order.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Sequence

from ..automata.buchi import BuchiAutomaton
from ..automata.ltl2ba import translate
from ..automata.serialize import automaton_from_dict, automaton_to_dict
from ..ltl.ast import Formula
from ..ltl.parser import parse
from ..ltl.printer import format_formula
from .contract import ContractSpec
from .database import ContractDatabase
from .options import PrebuiltArtifacts, QueryOptions, coerce_query_options
from .query import QueryOutcome
from .relational import AttributeFilter


def _translate_clauses(payload: tuple[list[str], int]) -> dict:
    """Worker: parse + conjoin + translate one contract's clauses.

    Text in, JSON-ready automaton out — keeps the inter-process payload
    small and version-stable.
    """
    clause_texts, state_budget = payload
    from ..ltl.ast import conj

    formula = conj([parse(text) for text in clause_texts])
    ba = translate(formula, state_budget=state_budget)
    return automaton_to_dict(ba)


def register_many(
    db: ContractDatabase,
    specs: Sequence[ContractSpec],
    workers: int = 1,
) -> list:
    """Register a batch of specs, translating in parallel.

    Returns the registered :class:`Contract` objects, in input order.
    Results are identical to serial registration (contract ids are
    assigned in input order by the parent process).

    A pool that cannot be created (``OSError``/``PermissionError`` in
    sandboxed environments) or that breaks mid-batch
    (:class:`~concurrent.futures.process.BrokenProcessPool` on worker
    OOM/crash) triggers the serial fallback; the wall clock already
    spent on the failed attempt is accounted to
    ``registration_stats.translation_seconds`` so the stats stay
    consistent either way.
    """
    if workers <= 1 or len(specs) <= 1:
        return [db.register(spec) for spec in specs]

    payloads = [
        (
            [format_formula(clause) for clause in spec.clauses],
            db.config.state_budget,
        )
        for spec in specs
    ]
    start = time.perf_counter()
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            documents = list(pool.map(_translate_clauses, payloads))
    except (OSError, PermissionError, BrokenProcessPool):
        db.registration_stats.translation_seconds += (
            time.perf_counter() - start
        )
        return [db.register(spec) for spec in specs]
    translation_seconds = time.perf_counter() - start

    contracts = []
    for spec, document in zip(specs, documents):
        ba: BuchiAutomaton = automaton_from_dict(document)
        contracts.append(
            db.register(spec, prebuilt=PrebuiltArtifacts(ba=ba))
        )
    # The parent did not time the (parallel) translation; account for the
    # wall-clock cost so registration stats stay meaningful.
    db.registration_stats.translation_seconds += translation_seconds
    return contracts


def query_many(
    db: ContractDatabase,
    queries: Sequence[str | Formula],
    options: QueryOptions | AttributeFilter | None = None,
    **legacy,
) -> list[QueryOutcome]:
    """Evaluate a query workload, fanning permission checks over threads.

    Queries are compiled through the database's LRU cache (so a workload
    with repeats pays each distinct translation once) and evaluated in
    input order; with ``options.workers > 1`` each query's per-candidate
    permission checks run concurrently on one shared thread pool.  The
    returned :class:`QueryOutcome` objects are identical to serial
    :meth:`~repro.broker.database.ContractDatabase.query` calls — the
    pool's ``map`` preserves candidate order and every check is a pure
    function of (contract, query, budget).

    Budgets apply *per query*: each query in the workload gets a fresh
    deadline, so one pathological query degrades without starving the
    rest of the batch.  Under a deadline, a query's queued checks whose
    budget is already gone return ``SKIPPED`` immediately (cooperative
    cancellation), so pool slots free up quickly for the next query.

    Deprecated pre-1.3 surface (still accepted, warns)::

        query_many(db, qs, workers=4, ...) -> query_many(db, qs,
                                                  QueryOptions(workers=4, ...))
    """
    options = coerce_query_options("query_many", options, legacy)

    def serial() -> list[QueryOutcome]:
        return [
            db._run_query(query, options, executor=None)
            for query in queries
        ]

    if options.workers <= 1 or not queries:
        return serial()
    try:
        with ThreadPoolExecutor(max_workers=options.workers) as pool:
            return [
                db._run_query(query, options, executor=pool)
                for query in queries
            ]
    except (OSError, RuntimeError):  # pragma: no cover - restricted envs
        return serial()
