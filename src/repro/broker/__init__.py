"""The contract broker: registration, relational pre-selection, and
temporal-permission query evaluation.

Quick tour::

    from repro.broker import ContractDatabase, AttributeFilter, le

    db = ContractDatabase()
    db.register(
        "Ticket A",
        ["G(dateChange -> !F refund)", ...],
        attributes={"price": 420, "route": "SAN-NYC"},
    )
    outcome = db.query(
        "F(missedFlight && F(refund || dateChange))",
        QueryOptions(
            attribute_filter=AttributeFilter.where(le("price", 500)),
            deadline_seconds=0.5,
        ),
    )
"""

from .analytics import Comparison, Relation, compare
from .cache import CacheStats, CompiledQuery, QueryCompilationCache
from .contract import Contract, ContractSpec
from .monitor import ContractMonitor, MonitorOptions, MonitorStatus
from .vocabulary import EventVocabulary
from .persist import load_database, save_database
from .journal import Journal, JournalReplayReport, open_database
from .parallel import query_many, register_many
from .registration import Quarantine, QuarantinedSpec, RegistrationReport
from .planner import (
    CostModel,
    PlannedStage,
    QueryPlan,
    QueryPlanner,
)
from .database import BrokerConfig, ContractDatabase, RegistrationStats
from .options import Degradation, PrebuiltArtifacts, QueryOptions
from .query import QueryOutcome, QueryResult, QueryStats, Verdict
from .relational import (
    MATCH_ALL,
    AttributeCondition,
    AttributeFilter,
    OpaqueCondition,
    contains,
    eq,
    ge,
    gt,
    is_in,
    le,
    lt,
    ne,
)
from .spec import QuerySpec
from .stats import AttributeStatistics, DatabaseStatistics

__all__ = [
    "Comparison",
    "Relation",
    "compare",
    "CacheStats",
    "CompiledQuery",
    "QueryCompilationCache",
    "query_many",
    "Contract",
    "ContractSpec",
    "ContractMonitor",
    "EventVocabulary",
    "MonitorOptions",
    "MonitorStatus",
    "load_database",
    "save_database",
    "Journal",
    "JournalReplayReport",
    "open_database",
    "Quarantine",
    "QuarantinedSpec",
    "RegistrationReport",
    "CostModel",
    "PlannedStage",
    "QueryPlan",
    "QueryPlanner",
    "QuerySpec",
    "AttributeStatistics",
    "DatabaseStatistics",
    "register_many",
    "BrokerConfig",
    "ContractDatabase",
    "RegistrationStats",
    "Degradation",
    "PrebuiltArtifacts",
    "QueryOptions",
    "QueryOutcome",
    "QueryResult",
    "QueryStats",
    "Verdict",
    "MATCH_ALL",
    "AttributeCondition",
    "AttributeFilter",
    "OpaqueCondition",
    "contains",
    "eq",
    "ge",
    "gt",
    "is_in",
    "le",
    "lt",
    "ne",
]
