"""Fault-isolated batch registration: reports and the quarantine.

Before 1.5, :func:`repro.broker.parallel.register_many` was all-or-
nothing: ``pool.map`` raises on the first worker exception, so one
contract whose translation blows the state budget (or whose clauses do
not parse) aborted the whole batch.  A broker ingesting third-party
specifications cannot work that way — the §7.2 workloads are thousands
of independent contracts, and one poison pill must not take the other
N−1 down with it.

This module holds the data structures of the rewritten batch path:

* :class:`QuarantinedSpec` — one spec that failed, with the exception
  that killed it and the pipeline stage it died in;
* :class:`RegistrationReport` — what a batch did: registered contracts
  (in input order), quarantined specs, pool retries and fallbacks.  It
  behaves as a sequence of the registered contracts, so existing
  call sites iterating the old list return value keep working;
* :class:`Quarantine` — the database-attached holding area
  (``db.quarantine``); quarantined specs are retriable once the caller
  fixes the cause (e.g. raises the state budget).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from .contract import Contract, ContractSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .database import ContractDatabase


@dataclass
class QuarantinedSpec:
    """One specification the batch path refused to let poison the rest.

    Attributes:
        spec: the offending specification (``None`` when it could not
            even be materialized from its raw document).
        name: the contract name (best effort when ``spec`` is None).
        error: the exception that killed it.
        stage: pipeline stage it died in — ``"parse"``, ``"translate"``
            or ``"register"``.
        attempts: how many times registration has been attempted
            (bumped by :meth:`Quarantine.retry`).
    """

    spec: ContractSpec | None
    name: str
    error: BaseException
    stage: str
    attempts: int = 1

    def describe(self) -> str:
        return (
            f"{self.name!r} [{self.stage}] "
            f"{type(self.error).__name__}: {self.error}"
        )


@dataclass
class RegistrationReport:
    """The outcome of one ``register_many`` batch.

    Sequence-compatible with the pre-1.5 return value: iterating,
    indexing and ``len()`` see the successfully registered contracts in
    input order.
    """

    contracts: list[Contract] = field(default_factory=list)
    quarantined: list[QuarantinedSpec] = field(default_factory=list)
    #: transient pool failures that were retried with backoff
    pool_retries: int = 0
    #: the batch (or part of it) fell back to serial in-process work
    pool_fallback: bool = False

    @property
    def ok(self) -> bool:
        return not self.quarantined

    @property
    def registered(self) -> int:
        return len(self.contracts)

    def summary(self) -> str:
        parts = [f"registered {len(self.contracts)}"]
        if self.quarantined:
            parts.append(f"quarantined {len(self.quarantined)}")
        if self.pool_retries:
            parts.append(f"retried pool x{self.pool_retries}")
        if self.pool_fallback:
            parts.append("serial fallback")
        return ", ".join(parts)

    # -- sequence compatibility -------------------------------------------------------

    def __iter__(self) -> Iterator[Contract]:
        return iter(self.contracts)

    def __len__(self) -> int:
        return len(self.contracts)

    def __getitem__(self, index):
        return self.contracts[index]

    def __contains__(self, contract: Contract) -> bool:
        return contract in self.contracts


class Quarantine:
    """The database's holding area for specs that failed registration.

    Thread-safe; attached to every database as ``db.quarantine``.
    Entries stay until a retry succeeds or the caller discards them.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: list[QuarantinedSpec] = []

    def add(self, entry: QuarantinedSpec) -> None:
        with self._lock:
            self._entries.append(entry)

    def extend(self, entries) -> None:
        with self._lock:
            self._entries.extend(entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def entries(self) -> list[QuarantinedSpec]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[QuarantinedSpec]:
        return iter(self.entries)

    def retry(self, db: "ContractDatabase") -> RegistrationReport:
        """Serially re-attempt every quarantined spec against ``db``.

        Successes are registered and removed from the quarantine;
        failures stay, with ``attempts`` bumped and ``error`` refreshed.
        Specs with no materialized :class:`ContractSpec` (parse-stage
        casualties) cannot be retried and stay put — the raw document
        has to be fixed and resubmitted.
        """
        from ..errors import ReproError

        report = RegistrationReport()
        with self._lock:
            entries = list(self._entries)
        still_failing: list[QuarantinedSpec] = []
        for entry in entries:
            if entry.spec is None:
                still_failing.append(entry)
                continue
            try:
                contract = db.register(entry.spec)
            except ReproError as exc:
                entry.attempts += 1
                entry.error = exc
                still_failing.append(entry)
                report.quarantined.append(entry)
            else:
                report.contracts.append(contract)
                db.metrics.inc("register.quarantine_recovered")
        with self._lock:
            # keep any entries added concurrently while we were retrying
            added = [e for e in self._entries if e not in entries]
            self._entries = still_failing + added
        return report
