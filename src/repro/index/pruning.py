"""Extracting pruning conditions from query BAs (Algorithm 1, §4.1).

A contract can permit a query only if a *simultaneous* lasso path exists,
which forces the contract to own a compatible label for every label on
some lasso path of the query BA.  Enumerating query lasso paths is
exponential, so — like the paper's implementation — we compute an
approximated necessary condition per final state ``t``:

* **cycle condition** — some incoming transition of ``t`` from inside
  its strongly connected component must be matched (any lasso knotted at
  ``t`` re-enters it through one of those);
* **path condition** — the lasso prefix must cross the condensation DAG
  from the initial state's component to ``t``'s component, so for each
  crossed condensation edge one of the possible labels must be matched.
  Labels *inside* a component are deliberately ignored: a prefix may or
  may not traverse them, so "we cannot exclude any contract for not
  having them" (Example 9).

The overall pruning condition is the disjunction over final states of
(path condition ∧ cycle condition).  The path conditions are memoized
per component, giving the linear-time behavior the paper describes in
§4.1.1.
"""

from __future__ import annotations

from ..automata import graph
from ..automata.buchi import BuchiAutomaton
from .condition import (
    FALSE_CONDITION,
    TRUE_CONDITION,
    CondFalse,
    CondLabel,
    Condition,
    make_and,
    make_or,
)


def pruning_condition(query: BuchiAutomaton) -> Condition:
    """The pruning condition of the query BA.

    Evaluating the result against the prefilter index yields a candidate
    set guaranteed to contain every contract permitting the query (§4.1);
    ``TRUE`` means the query cannot prune (e.g. a final state reachable
    through unconstrained labels), ``FALSE`` means no contract can
    possibly permit (e.g. no reachable final state on a cycle).
    """
    reachable = graph.reachable_from(query.initial, query.successor_states)
    components = graph.strongly_connected_components(
        reachable, query.successor_states
    )
    component_of: dict = {}
    for i, members in enumerate(components):
        for state in members:
            component_of[state] = i

    path_conditions = _component_path_conditions(
        query, components, component_of, reachable
    )

    disjuncts: list[Condition] = []
    for state in reachable:
        if state not in query.final:
            continue
        cycle = _cycle_condition(query, state, component_of, reachable)
        if isinstance(cycle, CondFalse):
            continue
        path = path_conditions[component_of[state]]
        disjuncts.append(make_and([path, cycle]))
    return make_or(disjuncts)


def _cycle_condition(
    query: BuchiAutomaton,
    final_state,
    component_of: dict,
    reachable: set,
) -> Condition:
    """Disjunction of the labels on transitions entering ``final_state``
    from within its own SCC (the paper's cycle approximation); ``FALSE``
    when the state cannot lie on any cycle."""
    target_component = component_of[final_state]
    labels: list[Condition] = []
    for src in reachable:
        if component_of.get(src) != target_component:
            continue
        for label, dst in query.successors(src):
            if dst != final_state:
                continue
            if label.is_true:
                return TRUE_CONDITION
            labels.append(CondLabel(label))
    return make_or(labels)


def _component_path_conditions(
    query: BuchiAutomaton,
    components: list[list],
    component_of: dict,
    reachable: set,
) -> dict[int, Condition]:
    """Necessary-label conditions for reaching each condensation
    component from the initial state.

    ``cond(C) = TRUE`` for the initial component; otherwise the
    disjunction over incoming condensation edges ``D --λ--> C`` of
    ``cond(D) ∧ S(λ)``.  Computed in one pass: Tarjan emits components in
    reverse topological order, so iterating the list backwards visits
    predecessors first.
    """
    initial_component = component_of[query.initial]
    incoming: dict[int, list[tuple[int, Condition]]] = {}
    for src in reachable:
        src_component = component_of[src]
        for label, dst in query.successors(src):
            if dst not in component_of:
                continue
            dst_component = component_of[dst]
            if dst_component == src_component:
                continue
            leaf = TRUE_CONDITION if label.is_true else CondLabel(label)
            incoming.setdefault(dst_component, []).append((src_component, leaf))

    conditions: dict[int, Condition] = {}
    for index in range(len(components) - 1, -1, -1):
        if index == initial_component:
            conditions[index] = TRUE_CONDITION
            continue
        disjuncts = [
            make_and([conditions[src], leaf])
            for src, leaf in incoming.get(index, ())
            if src in conditions
        ]
        conditions[index] = make_or(disjuncts)
    return conditions
