"""Pruning-condition ASTs.

A pruning condition (§4.1) is a monotone set expression over primitive
lookups ``S(λ)`` — "the contracts having a label compatible with λ" —
combined with unions (alternative lasso prefixes / knots) and
intersections (labels that must all be matched).  Because the expression
is monotone in its leaves, evaluating it against *supersets* ``S'(λ)``
(the depth-capped index of §4.2 returns those for long labels) still
yields a superset of the exact candidate set, which is all soundness
requires.

``TRUE`` is the unprunable condition (a final state reachable through
unconstrained labels selects the whole database); ``FALSE`` selects
nothing (an unsatisfiable query).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from ..automata.labels import Label

ContractSet = frozenset
Lookup = Callable[[Label], ContractSet]
Frequency = Callable[[Label], float]


class Condition:
    """Base class of pruning-condition nodes."""

    def evaluate(self, lookup: Lookup, universe: ContractSet) -> ContractSet:
        """The candidate set selected by this condition.

        Args:
            lookup: the index's ``S(λ)`` (or superset ``S'(λ)``) function.
            universe: the full set of contract ids (selected by ``TRUE``).
        """
        raise NotImplementedError

    def estimate(self, frequency: Frequency) -> float:
        """Estimated fraction of the database this condition selects.

        ``frequency`` maps a leaf label to ``|S(λ)| / N``; internal
        nodes combine leaf fractions under an independence assumption
        (intersections multiply, unions inclusion-exclude).  Used by the
        cost-based planner — estimates steer plans, never answers.
        """
        raise NotImplementedError

    def labels(self) -> frozenset[Label]:
        """Every ``S(λ)`` leaf label in the condition."""
        raise NotImplementedError

    def __and__(self, other: "Condition") -> "Condition":
        return make_and([self, other])

    def __or__(self, other: "Condition") -> "Condition":
        return make_or([self, other])


@dataclass(frozen=True)
class CondTrue(Condition):
    """Selects every contract (no pruning possible)."""

    def evaluate(self, lookup: Lookup, universe: ContractSet) -> ContractSet:
        return universe

    def estimate(self, frequency: Frequency) -> float:
        return 1.0

    def labels(self) -> frozenset[Label]:
        return frozenset()

    def __str__(self) -> str:
        return "TRUE"


@dataclass(frozen=True)
class CondFalse(Condition):
    """Selects no contract."""

    def evaluate(self, lookup: Lookup, universe: ContractSet) -> ContractSet:
        return frozenset()

    def estimate(self, frequency: Frequency) -> float:
        return 0.0

    def labels(self) -> frozenset[Label]:
        return frozenset()

    def __str__(self) -> str:
        return "FALSE"


TRUE_CONDITION = CondTrue()
FALSE_CONDITION = CondFalse()


@dataclass(frozen=True)
class CondLabel(Condition):
    """The primitive ``S(λ)`` lookup."""

    label: Label

    def evaluate(self, lookup: Lookup, universe: ContractSet) -> ContractSet:
        return lookup(self.label)

    def estimate(self, frequency: Frequency) -> float:
        return min(max(frequency(self.label), 0.0), 1.0)

    def labels(self) -> frozenset[Label]:
        return frozenset((self.label,))

    def __str__(self) -> str:
        return f"S({self.label})"


@dataclass(frozen=True)
class CondAnd(Condition):
    """Intersection of the children's candidate sets.

    The hash is cached at construction: condition trees get deep during
    Algorithm 1's path accumulation, and the builders' deduplication
    would otherwise re-hash whole subtrees quadratically.
    """

    children: tuple[Condition, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(("and", self.children)))

    def __hash__(self) -> int:  # noqa: D105 - cached structural hash
        return self._hash  # type: ignore[attr-defined]

    def evaluate(self, lookup: Lookup, universe: ContractSet) -> ContractSet:
        result = universe
        for child in self.children:
            result = result & child.evaluate(lookup, universe)
            if not result:
                break
        return result

    def estimate(self, frequency: Frequency) -> float:
        fraction = 1.0
        for child in self.children:
            fraction *= child.estimate(frequency)
        return fraction

    def labels(self) -> frozenset[Label]:
        out: frozenset[Label] = frozenset()
        for child in self.children:
            out |= child.labels()
        return out

    def __str__(self) -> str:
        return "(" + " & ".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class CondOr(Condition):
    """Union of the children's candidate sets (hash cached, see
    :class:`CondAnd`)."""

    children: tuple[Condition, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(("or", self.children)))

    def __hash__(self) -> int:  # noqa: D105 - cached structural hash
        return self._hash  # type: ignore[attr-defined]

    def evaluate(self, lookup: Lookup, universe: ContractSet) -> ContractSet:
        result: ContractSet = frozenset()
        for child in self.children:
            result = result | child.evaluate(lookup, universe)
        return result

    def estimate(self, frequency: Frequency) -> float:
        missing = 1.0
        for child in self.children:
            missing *= 1.0 - child.estimate(frequency)
        return 1.0 - missing

    def labels(self) -> frozenset[Label]:
        out: frozenset[Label] = frozenset()
        for child in self.children:
            out |= child.labels()
        return out

    def __str__(self) -> str:
        return "(" + " | ".join(str(c) for c in self.children) + ")"


def make_and(children: Iterable[Condition]) -> Condition:
    """Conjunction with flattening and identity/absorbing-element folding."""
    flat: list[Condition] = []
    seen: set[Condition] = set()
    for child in _flatten(children, CondAnd):
        if isinstance(child, CondFalse):
            return FALSE_CONDITION
        if isinstance(child, CondTrue) or child in seen:
            continue
        seen.add(child)
        flat.append(child)
    if not flat:
        return TRUE_CONDITION
    if len(flat) == 1:
        return flat[0]
    return CondAnd(tuple(flat))


def make_or(children: Iterable[Condition]) -> Condition:
    """Disjunction with flattening and identity/absorbing-element folding."""
    flat: list[Condition] = []
    seen: set[Condition] = set()
    for child in _flatten(children, CondOr):
        if isinstance(child, CondTrue):
            return TRUE_CONDITION
        if isinstance(child, CondFalse) or child in seen:
            continue
        seen.add(child)
        flat.append(child)
    if not flat:
        return FALSE_CONDITION
    if len(flat) == 1:
        return flat[0]
    return CondOr(tuple(flat))


def _flatten(children: Iterable[Condition], cls: type) -> list[Condition]:
    out: list[Condition] = []
    for child in children:
        if isinstance(child, cls):
            out.extend(child.children)  # type: ignore[attr-defined]
        else:
            out.append(child)
    return out


def to_dnf(condition: Condition) -> list[list[Condition]]:
    """The condition as a disjunction of conjunctions of primitive leaves
    (the form Algorithm 1 describes); for display and tests.

    ``TRUE`` maps to ``[[]]`` (one empty conjunct selecting everything)
    and ``FALSE`` to ``[]``.
    """
    if isinstance(condition, CondTrue):
        return [[]]
    if isinstance(condition, CondFalse):
        return []
    if isinstance(condition, CondLabel):
        return [[condition]]
    if isinstance(condition, CondOr):
        out: list[list[Condition]] = []
        for child in condition.children:
            out.extend(to_dnf(child))
        return out
    if isinstance(condition, CondAnd):
        terms: list[list[Condition]] = [[]]
        for child in condition.children:
            child_terms = to_dnf(child)
            terms = [t + c for t in terms for c in child_terms]
        return terms
    raise TypeError(f"unknown condition node: {type(condition).__name__}")
