"""The prefilter index (§4): registration-time structure + query-time use.

At registration the index computes, for every transition label ``γ`` of
the contract's BA, the expansion ``E(γ)`` with respect to the contract's
vocabulary, and inserts the contract id into every depth-capped set-trie
node whose literal set is contained in some expansion.  At query time the
pruning condition extracted from the query BA (Algorithm 1) is evaluated
against :meth:`PrefilterIndex.lookup`, yielding a candidate set that
provably contains every permitting contract — the expensive permission
algorithm then runs only on the candidates.

Lookups of labels longer than the depth cap return the *intersection* of
the sets of their depth-sized sub-labels; each of those is a superset of
the exact ``S(λ)``, so the intersection still is, and monotonicity of the
condition keeps the evaluation sound (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations, islice
from math import comb

from ..automata.buchi import BuchiAutomaton
from ..automata.labels import Label
from ..errors import IndexError_
from .condition import Condition
from .pruning import pruning_condition
from .trie import SetTrie

#: How many depth-sized sub-label combinations a long-label lookup will
#: intersect before stopping; each combination only tightens the result,
#: so truncation stays sound.
_MAX_SUBSET_PROBES = 256


@dataclass
class PrefilterStats:
    """Registration-side statistics (reported by the index benchmarks)."""

    contracts: int = 0
    labels_indexed: int = 0
    node_insertions: int = 0
    build_seconds: float = 0.0


class PrefilterIndex:
    """The §4 index over a database of contract BAs.

    Args:
        depth: set-trie depth cap ``k`` (§4.2); the structure grows with
            the number of consistent literal sets of size ≤ ``k`` over
            the vocabulary, so small values (2–3) are the practical
            choice.
    """

    def __init__(self, depth: int = 2):
        self._trie = SetTrie(depth=depth)
        self._contracts: set[int] = set()
        self.stats = PrefilterStats()

    @property
    def depth(self) -> int:
        return self._trie.depth

    @property
    def universe(self) -> frozenset[int]:
        """All registered contract ids (selected by the TRUE condition)."""
        return frozenset(self._contracts)

    # -- registration -------------------------------------------------------------

    def add_contract(
        self,
        contract_id: int,
        ba: BuchiAutomaton,
        vocabulary: frozenset[str],
    ) -> None:
        """Index one contract BA under its vocabulary."""
        if contract_id in self._contracts:
            raise IndexError_(f"contract {contract_id} already indexed")
        self._contracts.add(contract_id)
        self.stats.contracts += 1
        seen_expansions: set[frozenset] = set()
        for label in ba.labels():
            expansion = label.expansion(vocabulary)
            if expansion in seen_expansions:
                continue
            seen_expansions.add(expansion)
            self.stats.labels_indexed += 1
            self.stats.node_insertions += self._trie.insert_expansion(
                expansion, contract_id
            )

    def remove_contract(self, contract_id: int) -> None:
        """Drop a contract from the index."""
        if contract_id not in self._contracts:
            raise IndexError_(f"contract {contract_id} is not indexed")
        self._contracts.discard(contract_id)
        self.stats.contracts -= 1
        self._trie.remove_contract(contract_id)

    # -- lookup ----------------------------------------------------------------------

    def lookup(self, label: Label) -> frozenset[int]:
        """``S(λ)`` for short labels, the sound superset ``S'(λ)`` for
        labels longer than the depth cap."""
        literals = sorted(label.literals)
        if len(literals) <= self._trie.depth:
            return self._trie.get(literals)
        result: frozenset[int] | None = None
        probes = islice(
            combinations(literals, self._trie.depth), _MAX_SUBSET_PROBES
        )
        for subset in probes:
            subset_contracts = self._trie.get(subset)
            result = (
                subset_contracts
                if result is None
                else result & subset_contracts
            )
            if not result:
                break
        assert result is not None  # len(literals) > depth >= 1
        return result

    def candidates(self, query: BuchiAutomaton) -> frozenset[int]:
        """The candidate contract set for a query BA: extract the pruning
        condition (Algorithm 1) and evaluate it against the index."""
        return self.evaluate(pruning_condition(query))

    def evaluate(self, condition: Condition) -> frozenset[int]:
        """Evaluate a prebuilt pruning condition against the index.

        ``S(λ)`` lookups are memoized for the duration of the evaluation:
        pruning conditions repeat the same labels across many disjuncts.
        """
        cache: dict[Label, frozenset[int]] = {}

        def cached_lookup(label: Label) -> frozenset[int]:
            result = cache.get(label)
            if result is None:
                result = self.lookup(label)
                cache[label] = result
            return result

        return condition.evaluate(cached_lookup, self.universe)

    def label_frequency(self, label: Label) -> float:
        """``|S(λ)| / N`` — the fraction of registered contracts the
        primitive lookup selects (1.0 on an empty index)."""
        if not self._contracts:
            return 1.0
        return len(self.lookup(label)) / len(self._contracts)

    def estimate_selectivity(self, condition: Condition) -> float:
        """Estimated fraction of the database ``condition`` selects.

        Purely structural: only per-label posting sizes are probed
        (memoized for the walk) and combined under an independence
        assumption — no candidate sets are intersected, so planning a
        query costs far less than evaluating its condition.  The
        cost-based planner uses this to decide whether evaluating the
        condition for real is worth it; estimates steer plans, never
        answers.
        """
        cache: dict[Label, float] = {}

        def cached_frequency(label: Label) -> float:
            result = cache.get(label)
            if result is None:
                result = self.label_frequency(label)
                cache[label] = result
            return result

        return condition.estimate(cached_frequency)

    def estimate_probe_cost(self, condition: Condition) -> int:
        """Number of primitive set operations evaluating ``condition``
        would perform: one trie walk per distinct short label, one
        posting-list intersection per subset probe for labels beyond the
        depth cap (the expensive case — a ``k``-combination sweep capped
        at ``_MAX_SUBSET_PROBES``), and one set-algebra step per node of
        the *expanded* condition tree — evaluation revisits shared
        subtrees on every occurrence (only label lookups are memoized),
        so the expanded size is the honest measure, computed in time
        linear in the number of distinct nodes via memoized subtree
        sizes.  Purely structural, like :meth:`estimate_selectivity`:
        nothing is looked up, so the cost-based planner can price a
        probe without paying for one.
        """
        depth = self._trie.depth
        ops = 0
        for label in condition.labels():
            literals = len(label.literals)
            if literals <= depth:
                ops += 1
            else:
                ops += min(comb(literals, depth), _MAX_SUBSET_PROBES)
        # expanded tree size, iteratively (Algorithm 1's trees get deep)
        sizes: dict[int, int] = {}
        stack: list[tuple[Condition, bool]] = [(condition, False)]
        while stack:
            node, expanded = stack.pop()
            if id(node) in sizes and not expanded:
                continue
            children = getattr(node, "children", ())
            if expanded or not children:
                sizes[id(node)] = 1 + sum(
                    sizes[id(child)] for child in children
                )
            else:
                stack.append((node, True))
                stack.extend(
                    (child, False)
                    for child in children
                    if id(child) not in sizes
                )
        return ops + sizes[id(condition)]

    # -- serialization -----------------------------------------------------------------

    def to_dict(self, id_map: dict[int, int] | None = None) -> dict:
        """A JSON-ready snapshot of the whole index (trie + registered
        contract ids + build stats); ``id_map`` remaps contract ids like
        :meth:`SetTrie.to_dict`."""
        remap = (lambda i: i) if id_map is None else id_map.__getitem__
        return {
            "depth": self.depth,
            "contracts": sorted(remap(c) for c in self._contracts),
            "stats": {
                "contracts": self.stats.contracts,
                "labels_indexed": self.stats.labels_indexed,
                "node_insertions": self.stats.node_insertions,
                "build_seconds": self.stats.build_seconds,
            },
            "trie": self._trie.to_dict(id_map),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PrefilterIndex":
        """Inverse of :meth:`to_dict`; raises :class:`IndexError_` on a
        malformed document."""
        try:
            declared_depth = int(data["depth"])
            index = cls(depth=declared_depth)
            index._trie = SetTrie.from_dict(data["trie"])
            index._contracts = {int(c) for c in data["contracts"]}
            stats = data.get("stats", {})
            index.stats = PrefilterStats(
                contracts=int(stats.get("contracts", len(index._contracts))),
                labels_indexed=int(stats.get("labels_indexed", 0)),
                node_insertions=int(stats.get("node_insertions", 0)),
                build_seconds=float(stats.get("build_seconds", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexError_(f"malformed index document: {exc}") from exc
        if index._trie.depth != declared_depth:
            raise IndexError_(
                f"trie depth {index._trie.depth} does not match index "
                f"depth {declared_depth}"
            )
        return index

    # -- introspection ---------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._trie.num_nodes

    def size_estimate(self) -> int:
        """Rough entry-count footprint (paper's 'index size' metric)."""
        return self._trie.size_estimate()
