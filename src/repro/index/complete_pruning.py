"""Complete (non-approximated) pruning conditions.

§4.1.1 of the paper describes two grades of lasso pruning conditions.
The *implemented* one (our :func:`repro.index.pruning.pruning_condition`)
approximates: path conditions ignore intra-component labels, and cycle
conditions only look at the knot's incoming transitions inside its SCC.
The *complete* one enumerates actual lasso paths — "trivially,
enumerating all lasso paths knotted in k and taking the disjunction of
the condition for all of them, which consist of the conjunction of all
the labels on the path".  The paper reports the approximation "has
nearly the same number of false positives as the complete pruning
conditions" while being much faster to build; this module implements the
complete variant so that claim can be measured (see
``benchmarks/bench_ablation_pruning_grade.py``).

Because the number of simple paths/cycles is exponential, enumeration is
budgeted: once ``max_paths`` prefixes or cycles have been collected for
a knot, the remainder is over-approximated with ``TRUE`` — which keeps
the condition *sound* (a necessary condition may only get weaker) at the
price of precision, exactly the trade-off the paper's implementation
makes wholesale.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from ..automata.buchi import BuchiAutomaton
from ..automata.labels import Label
from ..automata import graph
from .condition import (
    CondFalse,
    CondLabel,
    Condition,
    TRUE_CONDITION,
    make_and,
    make_or,
)

State = Hashable

#: Path-enumeration budget per knot; beyond it the condition falls back
#: to TRUE (sound over-approximation).
DEFAULT_MAX_PATHS = 512


def complete_pruning_condition(
    query: BuchiAutomaton, max_paths: int = DEFAULT_MAX_PATHS
) -> Condition:
    """The disjunction over final states of exact lasso pruning
    conditions: (some simple prefix fully matched) ∧ (some simple cycle
    fully matched)."""
    reachable = graph.reachable_from(query.initial, query.successor_states)
    disjuncts: list[Condition] = []
    for knot in reachable:
        if knot not in query.final:
            continue
        cycles = _cycle_conditions(query, knot, reachable, max_paths)
        if isinstance(cycles, CondFalse):
            continue
        prefixes = _prefix_conditions(query, knot, reachable, max_paths)
        disjuncts.append(make_and([prefixes, cycles]))
    return make_or(disjuncts)


def _label_leaf(label: Label) -> Condition:
    return TRUE_CONDITION if label.is_true else CondLabel(label)


def _prefix_conditions(
    query: BuchiAutomaton,
    knot: State,
    reachable: set,
    max_paths: int,
) -> Condition:
    """Disjunction over simple paths initial → knot of the conjunction of
    their labels (the exact prefix condition)."""
    if query.initial == knot:
        return TRUE_CONDITION
    conditions: list[Condition] = []
    for labels, truncated in _simple_paths(
        query, query.initial, knot, reachable, max_paths
    ):
        if truncated:
            return TRUE_CONDITION
        conditions.append(make_and([_label_leaf(l) for l in labels]))
    return make_or(conditions)


def _cycle_conditions(
    query: BuchiAutomaton,
    knot: State,
    reachable: set,
    max_paths: int,
) -> Condition:
    """Disjunction over simple cycles through the knot of the conjunction
    of their labels (the exact cycle condition)."""
    conditions: list[Condition] = []
    for label, dst in query.successors(knot):
        if dst == knot:  # self loop
            conditions.append(_label_leaf(label))
            continue
        if dst not in reachable:
            continue
        for labels, truncated in _simple_paths(
            query, dst, knot, reachable, max_paths, forbidden={knot}
        ):
            if truncated:
                return TRUE_CONDITION
            conditions.append(
                make_and([_label_leaf(label)]
                         + [_label_leaf(l) for l in labels])
            )
    return make_or(conditions)


def _simple_paths(
    query: BuchiAutomaton,
    source: State,
    target: State,
    reachable: set,
    max_paths: int,
    forbidden: set | None = None,
) -> Iterator[tuple[list[Label], bool]]:
    """Yield ``(labels, truncated)`` for simple paths source → target.

    The final yield has ``truncated=True`` when the budget ran out, so
    callers can fall back to a sound over-approximation.
    """
    emitted = 0
    # Iterative DFS over (state, path-labels, visited-set) triples.
    stack: list[tuple[State, list[Label], frozenset]] = [
        (source, [], frozenset({source}) | frozenset(forbidden or ()))
    ]
    while stack:
        state, labels, visited = stack.pop()
        if emitted >= max_paths:
            yield [], True
            return
        for label, dst in query.successors(state):
            if dst == target:
                emitted += 1
                yield labels + [label], False
                if emitted >= max_paths:
                    yield [], True
                    return
                continue
            if dst in visited or dst not in reachable:
                continue
            stack.append((dst, labels + [label], visited | {dst}))
