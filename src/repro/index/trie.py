"""The set-trie backing the prefilter index (§4.2).

The paper adapts a TRIE [11] into a directed acyclic graph whose nodes
are *sets of literals*: the root is the empty set, level one holds
singletons, level two holds pairs, and so on up to a configurable depth
``k`` (the depth cap is what keeps the structure from growing
exponentially in the vocabulary).  A node labeled ``l`` is associated
with the set of contracts owning a transition label ``γ`` whose
expansion ``E(γ)`` contains ``l``.

Because a node's key determines it uniquely, the DAG is realized as a
dictionary from canonical literal tuples to nodes, with explicit child
edges kept for ordered navigation (one literal per step — the paper's
"linear in the number of literals" lookup).  Nodes whose literal set
contains a complementary pair are never created: no satisfiable query
label can ever look them up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Iterator

from ..errors import IndexError_
from ..automata.labels import Label, Literal, parse_literal


def _canonical(literals: Iterable[Literal]) -> tuple[Literal, ...]:
    return tuple(sorted(literals))


@dataclass
class TrieNode:
    """One node of the set-trie DAG."""

    key: tuple[Literal, ...]
    contracts: set[int] = field(default_factory=set)
    #: child edges: adding one literal (greater than every key literal,
    #: so each node is reached along exactly one ordered spine while the
    #: DAG still shares nodes across unordered insertions).
    children: dict[Literal, tuple[Literal, ...]] = field(default_factory=dict)

    @property
    def depth(self) -> int:
        return len(self.key)


class SetTrie:
    """Depth-capped set-trie over literal sets.

    Args:
        depth: maximum node label size ``k`` (≥ 1).
    """

    def __init__(self, depth: int = 2):
        if depth < 1:
            raise IndexError_(f"trie depth must be >= 1, got {depth}")
        self.depth = depth
        self._nodes: dict[tuple[Literal, ...], TrieNode] = {
            (): TrieNode(key=())
        }

    # -- construction ---------------------------------------------------------

    def insert_expansion(self, expansion: frozenset[Literal],
                         contract_id: int) -> int:
        """Associate ``contract_id`` with every consistent subset of
        ``expansion`` of size ≤ depth; returns how many nodes were
        touched."""
        touched = 0
        for size in range(0, self.depth + 1):
            for subset in combinations(sorted(expansion), size):
                if _contradictory(subset):
                    continue
                node = self._ensure_node(subset)
                if contract_id not in node.contracts:
                    node.contracts.add(contract_id)
                    touched += 1
        return touched

    def remove_contract(self, contract_id: int) -> None:
        """Remove a contract from every node (used on deregistration),
        then prune nodes whose subtree holds no contracts — without the
        pruning, register/deregister churn would grow ``num_nodes`` and
        ``size_estimate`` without bound."""
        for node in self._nodes.values():
            node.contracts.discard(contract_id)
        self._prune_empty()

    def _prune_empty(self) -> None:
        """Drop every non-root node whose subtree contains no contract,
        detaching it from its parent's ``children``.  Keys are visited
        deepest-first so a parent emptied by a child's removal is pruned
        in the same pass."""
        for key in sorted(self._nodes, key=len, reverse=True):
            if not key:
                continue
            node = self._nodes[key]
            if node.contracts or node.children:
                continue
            del self._nodes[key]
            parent = self._nodes[key[:-1]]
            del parent.children[key[-1]]

    def _ensure_node(self, key: tuple[Literal, ...]) -> TrieNode:
        node = self._nodes.get(key)
        if node is not None:
            return node
        node = TrieNode(key=key)
        self._nodes[key] = node
        if key:
            parent = self._ensure_node(key[:-1])
            parent.children[key[-1]] = key
        return node

    # -- lookup ----------------------------------------------------------------

    def get(self, literals: Iterable[Literal]) -> frozenset[int]:
        """The contract set of the node labeled exactly by ``literals``
        (empty if no such node); requires ``len(literals) <= depth``."""
        key = _canonical(literals)
        if len(key) > self.depth:
            raise IndexError_(
                f"exact lookup of {len(key)} literals exceeds depth {self.depth}"
            )
        node = self._walk(key)
        if node is None:
            return frozenset()
        return frozenset(node.contracts)

    def _walk(self, key: tuple[Literal, ...]) -> TrieNode | None:
        """Navigate from the root one literal at a time (the DAG walk the
        paper describes; equivalent to a direct dictionary probe but kept
        explicit so the structure is honest)."""
        node = self._nodes[()]
        for literal in key:
            child_key = node.children.get(literal)
            if child_key is None:
                return None
            node = self._nodes[child_key]
        return node

    # -- serialization -----------------------------------------------------------

    def to_dict(self, id_map: dict[int, int] | None = None) -> dict:
        """A JSON-ready snapshot of the trie (structure + contract sets).

        ``id_map``, when given, remaps contract ids on the way out — the
        persistence layer uses it to renumber ids to their dense
        save-order positions.
        """
        remap = (lambda i: i) if id_map is None else id_map.__getitem__
        nodes = []
        for key in sorted(self._nodes):
            node = self._nodes[key]
            nodes.append({
                "key": [str(lit) for lit in key],
                "contracts": sorted(remap(c) for c in node.contracts),
            })
        return {"depth": self.depth, "nodes": nodes}

    @classmethod
    def from_dict(cls, data: dict) -> "SetTrie":
        """Inverse of :meth:`to_dict`; raises :class:`IndexError_` on a
        structurally invalid document (the persistence layer treats that
        as a corrupt artifact and rebuilds)."""
        try:
            trie = cls(depth=int(data["depth"]))
            docs = data["nodes"]
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexError_(f"malformed trie document: {exc}") from exc
        for doc in docs:
            try:
                key = _canonical(parse_literal(s) for s in doc["key"])
                contracts = [int(c) for c in doc["contracts"]]
            except (KeyError, TypeError, ValueError) as exc:
                raise IndexError_(f"malformed trie node: {exc}") from exc
            if len(key) > trie.depth:
                raise IndexError_(
                    f"trie node {doc['key']} exceeds depth {trie.depth}"
                )
            trie._ensure_node(key).contracts.update(contracts)
        return trie

    # -- introspection ----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def nodes(self) -> Iterator[TrieNode]:
        return iter(self._nodes.values())

    def size_estimate(self) -> int:
        """Rough memory footprint: total contract-id entries plus node
        keys (a stand-in for the paper's on-disk index size metric)."""
        return sum(len(n.contracts) + len(n.key) for n in self._nodes.values())


def _contradictory(literals: tuple[Literal, ...]) -> bool:
    events: dict[str, bool] = {}
    for lit in literals:
        seen = events.get(lit.event)
        if seen is not None and seen != lit.positive:
            return True
        events[lit.event] = lit.positive
    return False
