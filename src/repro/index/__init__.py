"""The prefiltering optimization (§4): pruning conditions + set-trie index.

Typical use::

    from repro.index import PrefilterIndex, pruning_condition

    index = PrefilterIndex(depth=2)
    index.add_contract(7, contract_ba, vocabulary)
    candidates = index.candidates(query_ba)   # superset of permitted set
"""

from .condition import (
    FALSE_CONDITION,
    TRUE_CONDITION,
    CondAnd,
    CondFalse,
    CondLabel,
    CondOr,
    CondTrue,
    Condition,
    make_and,
    make_or,
    to_dnf,
)
from .complete_pruning import complete_pruning_condition
from .prefilter import PrefilterIndex, PrefilterStats
from .pruning import pruning_condition
from .trie import SetTrie, TrieNode

__all__ = [
    "FALSE_CONDITION",
    "TRUE_CONDITION",
    "CondAnd",
    "CondFalse",
    "CondLabel",
    "CondOr",
    "CondTrue",
    "Condition",
    "make_and",
    "make_or",
    "to_dnf",
    "complete_pruning_condition",
    "PrefilterIndex",
    "PrefilterStats",
    "pruning_condition",
    "SetTrie",
    "TrieNode",
]
