"""Language-level operations on Büchi automata: intersection and union.

The permission check of §6.2 is deliberately *not* a plain language
intersection (it additionally requires a full projection class), but the
classical intersection product is still the right tool in several
supporting roles: the test suite uses it as an independent necessary
condition for permission, and downstream users get the standard toolbox
they would expect from an automata library.

Intersection uses the classical two-track construction: the product
tracks which automaton's acceptance set it is currently waiting for, and
a run is accepted iff the track flips forever — i.e. both automata
accept.  Union simply merges the two automata under a fresh initial
state (Büchi automata are closed under union without blow-up).
"""

from __future__ import annotations

from .buchi import BuchiAutomaton, Transition


def intersection(a: BuchiAutomaton, b: BuchiAutomaton) -> BuchiAutomaton:
    """A BA accepting exactly the runs accepted by both ``a`` and ``b``.

    States are ``(state_a, state_b, track)`` with ``track ∈ {0, 1}``:
    track 0 waits for an ``a``-final state, track 1 for a ``b``-final
    one.  Accepting states are the track-1 states about to flip back —
    they recur iff both final sets are visited infinitely often.
    """
    initial = (a.initial, b.initial, 0)
    transitions: list[Transition] = []
    states = {initial}
    frontier = [initial]
    while frontier:
        state = frontier.pop()
        state_a, state_b, track = state
        if track == 0:
            next_track = 1 if state_a in a.final else 0
        else:
            next_track = 0 if state_b in b.final else 1
        for label_a, dst_a in a.successors(state_a):
            for label_b, dst_b in b.successors(state_b):
                combined = label_a.conjoin(label_b)
                if combined is None:
                    continue
                dst = (dst_a, dst_b, next_track)
                transitions.append(Transition(state, combined, dst))
                if dst not in states:
                    states.add(dst)
                    frontier.append(dst)
    final = {s for s in states if s[2] == 1 and s[1] in b.final}
    return BuchiAutomaton(states, initial, transitions, final)


def union(a: BuchiAutomaton, b: BuchiAutomaton) -> BuchiAutomaton:
    """A BA accepting exactly the runs accepted by ``a`` or ``b``.

    The two automata are placed side by side (states tagged by side) and
    a fresh initial state copies both original initial states' outgoing
    transitions.
    """
    initial = ("u", None)

    def tag(side: str, state) -> tuple:
        return (side, state)

    transitions: list[Transition] = []
    states: set = {initial}
    for side, ba in (("a", a), ("b", b)):
        for state in ba.states:
            states.add(tag(side, state))
        for t in ba.transitions():
            transitions.append(
                Transition(tag(side, t.src), t.label, tag(side, t.dst))
            )
        for label, dst in ba.successors(ba.initial):
            transitions.append(Transition(initial, label, tag(side, dst)))
    final = {tag("a", s) for s in a.final} | {tag("b", s) for s in b.final}
    return BuchiAutomaton(states, initial, transitions, final)
