"""Büchi automata over snapshot alphabets.

A Büchi automaton (BA) is the tuple ``{Q, I, δ, F}`` of §6.2.1, with the
transition relation ``δ ⊆ Q × Σ × Q`` where Σ is the set of conjunctions
of literals (:class:`repro.automata.labels.Label`).  A run of snapshots is
accepted iff it satisfies some *lasso path* — a simple prefix to a final
state plus a cycle back to it, iterated forever.

The class is immutable once built (use :class:`BuchiBuilder` or the
``make`` classmethod); states are arbitrary hashable values, typically
``int`` after canonicalization.  All algorithmic heavy lifting (SCCs,
reachability) is delegated to :mod:`repro.automata.graph`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Iterator, Mapping

from ..errors import AutomatonError
from ..ltl.runs import Run, Snapshot
from . import graph
from .labels import TRUE_LABEL, Label, Literal

State = Hashable


@dataclass(frozen=True)
class Transition:
    """One labeled transition ``src --label--> dst``."""

    src: State
    label: Label
    dst: State

    def __str__(self) -> str:
        return f"{self.src} --[{self.label}]--> {self.dst}"


class BuchiAutomaton:
    """An immutable Büchi automaton with a single initial state.

    The paper assumes w.l.o.g. a single initial state (Algorithm 2); the
    LTL translation introduces a fresh one when needed.

    Attributes:
        states: frozenset of states.
        initial: the initial state.
        final: frozenset of accepting states.
    """

    __slots__ = ("states", "initial", "final", "_transitions", "_stats_cache")

    def __init__(
        self,
        states: Iterable[State],
        initial: State,
        transitions: Iterable[Transition],
        final: Iterable[State],
    ):
        self.states = frozenset(states)
        self.initial = initial
        self.final = frozenset(final)
        table: dict[State, list[tuple[Label, State]]] = {s: [] for s in self.states}
        count = 0
        for t in transitions:
            if t.src not in self.states or t.dst not in self.states:
                raise AutomatonError(f"transition {t} uses unknown state")
            table[t.src].append((t.label, t.dst))
            count += 1
        if self.initial not in self.states:
            raise AutomatonError(f"initial state {self.initial!r} not a state")
        if not self.final <= self.states:
            raise AutomatonError("final states must be a subset of the states")
        # Freeze per-state transition lists, deterministically ordered.
        self._transitions: dict[State, tuple[tuple[Label, State], ...]] = {
            s: tuple(sorted(table[s], key=lambda lt: (lt[0].sort_key(), _state_key(lt[1]))))
            for s in self.states
        }
        self._stats_cache: dict | None = None

    # -- construction helpers ------------------------------------------------------

    @classmethod
    def make(
        cls,
        initial: State,
        transitions: Iterable[tuple[State, str | Label, State]],
        final: Iterable[State],
        states: Iterable[State] = (),
    ) -> "BuchiAutomaton":
        """Compact constructor for tests and examples.

        ``transitions`` entries are ``(src, label, dst)`` where the label
        can be a :class:`Label` or a string like ``"a & !b"`` / ``"true"``.
        States are inferred from the transitions (plus ``states``).
        """
        trans = []
        all_states: set[State] = {initial} | set(states) | set(final)
        for src, lab, dst in transitions:
            label = lab if isinstance(lab, Label) else Label.parse(lab)
            trans.append(Transition(src, label, dst))
            all_states.add(src)
            all_states.add(dst)
        return cls(all_states, initial, trans, final)

    # -- basic queries ------------------------------------------------------------

    def successors(self, state: State) -> tuple[tuple[Label, State], ...]:
        """The outgoing ``(label, dst)`` pairs of ``state``."""
        return self._transitions[state]

    def successor_states(self, state: State) -> Iterator[State]:
        """Destination states only (labels ignored)."""
        for _, dst in self._transitions[state]:
            yield dst

    def transitions(self) -> Iterator[Transition]:
        """Iterate over every transition."""
        for src in self.states:
            for label, dst in self._transitions[src]:
                yield Transition(src, label, dst)

    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_transitions(self) -> int:
        return sum(len(v) for v in self._transitions.values())

    def labels(self) -> Iterator[Label]:
        """Every transition label (with repetition)."""
        for src in self.states:
            for label, _ in self._transitions[src]:
                yield label

    def events(self) -> frozenset[str]:
        """All events mentioned on any transition label."""
        out: set[str] = set()
        for label in self.labels():
            out |= label.events()
        return frozenset(out)

    def literals(self) -> frozenset[Literal]:
        """All literals appearing on any transition label — the contract's
        *cited literals* used to key the projection store (§5.2)."""
        out: set[Literal] = set()
        for label in self.labels():
            out |= label.literals
        return frozenset(out)

    def is_final(self, state: State) -> bool:
        return state in self.final

    # -- language-level operations ---------------------------------------------------

    def accepts(self, run: Run) -> bool:
        """Decide whether the automaton accepts an ultimately-periodic run.

        The product of run positions and automaton states is itself a
        finite graph; the run is accepted iff that product, restricted to
        edges whose label is satisfied by the current snapshot, has a
        reachable cycle through a pair with a final state.  Cycles can
        only close inside the loop portion, so this captures exactly the
        lasso-path acceptance condition of §2.3.
        """
        start = (0, self.initial)

        def successors(pair: tuple[int, State]) -> Iterator[tuple[int, State]]:
            position, state = pair
            snap = run.at(position)
            nxt = run.successor(position)
            for label, dst in self._transitions[state]:
                if label.satisfied_by(snap):
                    yield (nxt, dst)

        reachable = graph.reachable_from(start, successors)
        for component in graph.strongly_connected_components(reachable, successors):
            if not any(state in self.final for _, state in component):
                continue
            if graph.is_cyclic_component(component, successors):
                return True
        return False

    def is_empty(self) -> bool:
        """True iff the automaton accepts no run (no reachable accepting
        lasso)."""
        reachable = graph.reachable_from(self.initial, self.successor_states)
        for component in graph.strongly_connected_components(
            reachable, self.successor_states
        ):
            if not any(s in self.final for s in component):
                continue
            if graph.is_cyclic_component(component, self.successor_states):
                return False
        return True

    def find_accepted_run(self) -> Run | None:
        """A concrete ultimately-periodic run accepted by the automaton, or
        ``None`` if the language is empty.

        Unconstrained events are set to false in every snapshot.  Used by
        examples and tests to produce human-readable evidence.
        """
        reachable = graph.reachable_from(self.initial, self.successor_states)
        accepting = graph.states_on_accepting_cycles(
            reachable, self.successor_states, self.is_final
        )
        targets = accepting & self.final
        if not targets:
            return None
        knot = min(targets, key=_state_key)
        prefix_labels = self._path_labels(self.initial, {knot})
        if prefix_labels is None:
            return None
        cycle_labels = self._cycle_labels(knot)
        if cycle_labels is None:
            return None
        prefix = tuple(lab.pick_snapshot() for lab in prefix_labels)
        loop = tuple(lab.pick_snapshot() for lab in cycle_labels)
        return Run(prefix, loop)

    def _path_labels(self, source: State, targets: set[State]) -> list[Label] | None:
        """Labels along some shortest path from ``source`` into ``targets``
        (empty list if the source is already a target)."""
        if source in targets:
            return []
        parent: dict[State, tuple[State, Label]] = {}
        frontier = [source]
        seen = {source}
        while frontier:
            next_frontier: list[State] = []
            for state in frontier:
                for label, dst in self._transitions[state]:
                    if dst in seen:
                        continue
                    seen.add(dst)
                    parent[dst] = (state, label)
                    if dst in targets:
                        labels: list[Label] = []
                        cursor = dst
                        while cursor != source:
                            prev, lab = parent[cursor]
                            labels.append(lab)
                            cursor = prev
                        labels.reverse()
                        return labels
                    next_frontier.append(dst)
            frontier = next_frontier
        return None

    def _cycle_labels(self, knot: State) -> list[Label] | None:
        """Labels along some cycle from ``knot`` back to itself."""
        for label, dst in self._transitions[knot]:
            if dst == knot:
                return [label]
        for label, dst in self._transitions[knot]:
            back = self._path_labels(dst, {knot})
            if back is not None:
                return [label] + back
        return None

    # -- structural transforms ---------------------------------------------------------

    def map_states(self, mapper: Callable[[State], State]) -> "BuchiAutomaton":
        """Rename states through ``mapper`` (must be injective)."""
        mapped = {s: mapper(s) for s in self.states}
        if len(set(mapped.values())) != len(mapped):
            raise AutomatonError("state mapper is not injective")
        return BuchiAutomaton(
            mapped.values(),
            mapped[self.initial],
            [
                Transition(mapped[src], label, mapped[dst])
                for src in self.states
                for label, dst in self._transitions[src]
            ],
            [mapped[s] for s in self.final],
        )

    def canonical_numbering(self) -> dict[State, int]:
        """The state -> 0..n-1 renumbering :meth:`canonical` applies: BFS
        order from the initial state, unreachable states appended in
        sorted order.  Exposed so persisted artifacts that reference
        states (seed sets, bisimulation partitions) can be expressed in
        the same numbering as the serialized automaton."""
        order: list[State] = [self.initial]
        seen = {self.initial}
        cursor = 0
        while cursor < len(order):
            state = order[cursor]
            cursor += 1
            for _, dst in self._transitions[state]:
                if dst not in seen:
                    seen.add(dst)
                    order.append(dst)
        rest = sorted(self.states - seen, key=_state_key)
        order.extend(rest)
        return {state: i for i, state in enumerate(order)}

    def canonical(self) -> "BuchiAutomaton":
        """Renumber states 0..n-1 in BFS order from the initial state
        (unreachable states are appended in sorted order); gives a stable
        form for serialization and equality-by-structure tests."""
        numbering = self.canonical_numbering()
        return self.map_states(lambda s: numbering[s])

    # -- stats & display ---------------------------------------------------------------

    def stats(self) -> dict:
        """Size statistics used in Table 2 style reporting."""
        if self._stats_cache is None:
            self._stats_cache = {
                "states": self.num_states,
                "transitions": self.num_transitions,
                "final": len(self.final),
                "events": len(self.events()),
            }
        return dict(self._stats_cache)

    def __str__(self) -> str:
        lines = [
            f"BuchiAutomaton(states={self.num_states}, "
            f"transitions={self.num_transitions}, "
            f"initial={self.initial}, final={sorted(self.final, key=_state_key)})"
        ]
        for src in sorted(self.states, key=_state_key):
            for label, dst in self._transitions[src]:
                lines.append(f"  {src} --[{label}]--> {dst}")
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BuchiAutomaton):
            return NotImplemented
        return (
            self.states == other.states
            and self.initial == other.initial
            and self.final == other.final
            and self._transitions == other._transitions
        )

    def __hash__(self) -> int:
        return hash((self.states, self.initial, self.final))


def _state_key(state: State) -> tuple:
    """Total order over heterogeneous state values (ints before strings
    before tuples), for deterministic iteration."""
    return (str(type(state).__name__), str(state))


class BuchiBuilder:
    """Mutable accumulator for constructing a :class:`BuchiAutomaton`."""

    def __init__(self) -> None:
        self._states: set[State] = set()
        self._initial: State | None = None
        self._final: set[State] = set()
        self._transitions: list[Transition] = []
        self._seen_transitions: set[tuple[State, Label, State]] = set()

    def add_state(self, state: State, *, initial: bool = False,
                  final: bool = False) -> "BuchiBuilder":
        self._states.add(state)
        if initial:
            if self._initial is not None and self._initial != state:
                raise AutomatonError("initial state already set")
            self._initial = state
        if final:
            self._final.add(state)
        return self

    def add_transition(self, src: State, label: Label | str, dst: State) -> "BuchiBuilder":
        """Add a transition; duplicates (same src/label/dst) are ignored."""
        if not isinstance(label, Label):
            label = Label.parse(label)
        key = (src, label, dst)
        if key in self._seen_transitions:
            return self
        self._seen_transitions.add(key)
        self._states.add(src)
        self._states.add(dst)
        self._transitions.append(Transition(src, label, dst))
        return self

    def build(self) -> BuchiAutomaton:
        if self._initial is None:
            raise AutomatonError("no initial state set")
        return BuchiAutomaton(
            self._states, self._initial, self._transitions, self._final
        )
