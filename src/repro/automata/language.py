"""Bounded exploration of a Büchi automaton's language.

Contracts are sets of allowed temporal sequences (§2); being able to
*enumerate* representative allowed sequences is invaluable for contract
authors ("what does my specification actually permit?") and powers the
examples' explanations.  This module enumerates accepted
ultimately-periodic runs by enumerating their finite representations:
simple prefixes into an accepting knot plus simple cycles back to it —
the lasso paths of §3.1.

Enumeration is bounded (``limit`` runs, ``max_length`` per prefix/cycle)
because the language is generally infinite.  Snapshots instantiate each
transition label minimally: constrained events take their required
value, everything else is false.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from ..ltl.runs import Run
from . import graph
from .buchi import BuchiAutomaton
from .labels import Label

State = Hashable


#: Cap on breadth-first expansions per enumeration — dense automata have
#: exponentially many simple paths, and an unbounded frontier would hang
#: on them.  Hitting the budget just truncates the enumeration.
DEFAULT_WORK_BUDGET = 20_000


def enumerate_runs(
    ba: BuchiAutomaton,
    limit: int = 10,
    max_length: int = 8,
    work_budget: int = DEFAULT_WORK_BUDGET,
) -> Iterator[Run]:
    """Yield up to ``limit`` distinct accepted runs of ``ba``.

    Runs are produced in breadth-first order of their prefix length, so
    the simplest allowed behaviors come out first.  Enumeration is
    best-effort: it stops after ``limit`` runs, path length
    ``max_length``, or ``work_budget`` explored edges — whichever comes
    first — so it is safe on dense automata.
    """
    reachable = graph.reachable_from(ba.initial, ba.successor_states)
    accepting = graph.states_on_accepting_cycles(
        reachable, ba.successor_states, ba.is_final
    )
    knots = sorted(accepting & ba.final, key=str)
    if not knots:
        return

    produced = 0
    seen: set[Run] = set()
    budget = [work_budget]
    for prefix_labels, knot in _bounded_paths(
        ba, ba.initial, set(knots), max_length, budget
    ):
        if produced >= limit:
            return
        for cycle_labels in _bounded_cycles(ba, knot, max_length, budget):
            run = Run(
                tuple(l.pick_snapshot() for l in prefix_labels),
                tuple(l.pick_snapshot() for l in cycle_labels),
            )
            if run in seen:
                continue
            seen.add(run)
            produced += 1
            yield run
            if produced >= limit:
                return


def _bounded_paths(
    ba: BuchiAutomaton,
    source: State,
    targets: set,
    max_length: int,
    budget: list[int],
) -> Iterator[tuple[list[Label], State]]:
    """Simple paths (as label lists) from ``source`` into ``targets``, in
    breadth-first order, including the empty path if applicable."""
    if source in targets:
        yield [], source
    queue: list[tuple[State, list[Label], frozenset]] = [
        (source, [], frozenset({source}))
    ]
    while queue and budget[0] > 0:
        state, labels, visited = queue.pop(0)
        if len(labels) >= max_length:
            continue
        for label, dst in ba.successors(state):
            budget[0] -= 1
            if budget[0] <= 0:
                return
            if dst in targets:
                yield labels + [label], dst
            if dst not in visited:
                queue.append((dst, labels + [label], visited | {dst}))


def _bounded_cycles(
    ba: BuchiAutomaton,
    knot: State,
    max_length: int,
    budget: list[int],
) -> Iterator[list[Label]]:
    """Simple cycles (as label lists) from ``knot`` back to itself."""
    queue: list[tuple[State, list[Label], frozenset]] = [
        (knot, [], frozenset())
    ]
    while queue and budget[0] > 0:
        state, labels, visited = queue.pop(0)
        if len(labels) >= max_length:
            continue
        for label, dst in ba.successors(state):
            budget[0] -= 1
            if budget[0] <= 0:
                return
            if dst == knot:
                yield labels + [label]
            elif dst not in visited:
                queue.append((dst, labels + [label], visited | {dst}))


def example_behaviors(
    ba: BuchiAutomaton,
    limit: int = 5,
    horizon: int = 6,
) -> list[list[frozenset]]:
    """Human-friendly view: the first ``horizon`` snapshots of up to
    ``limit`` allowed runs (used by examples to print 'this contract
    allows: ...')."""
    return [run.unroll(horizon) for run in enumerate_runs(ba, limit=limit)]
