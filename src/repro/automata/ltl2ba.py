"""LTL to Büchi automaton translation.

The paper's prototype uses the LTL2BA tool of Gastin & Oddoux [12] as a
black box; this module is our from-scratch substitute, implementing the
same algorithmic idea ("Fast LTL to Büchi automata translation", CAV
2001):

1. rewrite the formula into simplified negation normal form
   (:func:`repro.ltl.rewrite.nnf`);
2. compute, per subformula and with memoization, its **covers** — the
   transition function of the implicit very weak alternating automaton.
   A cover is a triple ``(label, obligations, fulfilled)``: under a
   snapshot satisfying *label*, the formula holds now provided the
   *obligations* (a set of subformulas) all hold from the next instant;
   *fulfilled* records the Until subformulas discharged through their
   right-hand side, which drives acceptance.  Covers of conjunctions are
   pairwise products with eager deduplication and absorption — this is
   what keeps conjunctions of many contract clauses tractable where the
   naive GPVW tableau explodes;
3. build a transition-based generalized Büchi automaton whose states are
   obligation sets (one acceptance set per Until subformula: a transition
   is accepting for ``f`` iff ``f`` is not among the successor's
   obligations or was fulfilled on the step);
4. degeneralize with a max-advance counter and structurally reduce
   (:mod:`repro.automata.reduce`).

Transition labels come out as conjunctions of literals — exactly the
alphabet Σ the paper's machinery assumes (§6.2.1).  The construction is
verified differentially against the ground-truth LTL evaluator on random
ultimately-periodic runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TranslationError
from ..ltl import ast as A
from ..ltl.ast import Formula
from ..ltl.rewrite import nnf
from .buchi import BuchiAutomaton, Transition
from .labels import TRUE_LABEL, Label, neg, pos

#: Default cap on generated states; the worst case is exponential in the
#: formula (§3.1), so we fail fast with a clear error instead of
#: thrashing.
DEFAULT_STATE_BUDGET = 60_000

_EMPTY: frozenset = frozenset()


@dataclass(frozen=True)
class _Cover:
    """One way to satisfy a formula at the current instant.

    ``label`` constrains the current snapshot; ``obligations`` must hold
    from the next instant on; ``fulfilled`` lists the Until subformulas
    discharged via their right operand on this step.
    """

    label: Label
    obligations: frozenset
    fulfilled: frozenset

    def combine(self, other: "_Cover") -> "_Cover | None":
        """Conjunction of two covers (``None`` if the labels conflict)."""
        label = self.label.conjoin(other.label)
        if label is None:
            return None
        return _Cover(
            label,
            self.obligations | other.obligations,
            self.fulfilled | other.fulfilled,
        )


def _prune(covers: list[_Cover]) -> tuple[_Cover, ...]:
    """Deduplicate and absorb dominated covers.

    A cover ``c1`` is dominated by ``c2`` when ``c2`` is at least as easy
    to take (its label's literals are a subset), leaves at most the same
    obligations, and fulfills at least the same Untils; every accepting
    continuation through ``c1`` then exists through ``c2``, so ``c1``
    can be dropped (the transition-implication simplification of [12]).
    """
    unique = list(dict.fromkeys(covers))
    keep: list[_Cover] = []
    for i, c1 in enumerate(unique):
        dominated = False
        for j, c2 in enumerate(unique):
            if i == j:
                continue
            if (
                c2.label.literals <= c1.label.literals
                and c2.obligations <= c1.obligations
                and c2.fulfilled >= c1.fulfilled
            ):
                # Break ties deterministically so mutual dominators
                # (identical triples are already deduped) keep exactly one.
                if (
                    c2.label.literals == c1.label.literals
                    and c2.obligations == c1.obligations
                    and c2.fulfilled == c1.fulfilled
                ):
                    dominated = j < i
                else:
                    dominated = True
                if dominated:
                    break
        if not dominated:
            keep.append(c1)
    return tuple(keep)


def _product(left: tuple[_Cover, ...], right: tuple[_Cover, ...]) -> tuple[_Cover, ...]:
    out: list[_Cover] = []
    for c1 in left:
        for c2 in right:
            combined = c1.combine(c2)
            if combined is not None:
                out.append(combined)
    return _prune(out)


def _configurations(formula: Formula) -> tuple[frozenset, ...]:
    """The alternative obligation sets denoted by a formula (the ``bar``
    operator of [12]): disjunctions offer alternatives, conjunctions
    merge, anything else is an atomic obligation."""
    if isinstance(formula, A.TrueConst):
        return (_EMPTY,)
    if isinstance(formula, A.FalseConst):
        return ()
    if isinstance(formula, A.Or):
        return _configurations(formula.left) + _configurations(formula.right)
    if isinstance(formula, A.And):
        out = []
        for e1 in _configurations(formula.left):
            for e2 in _configurations(formula.right):
                out.append(e1 | e2)
        return tuple(dict.fromkeys(out))
    return (frozenset((formula,)),)


class _Translator:
    """Holds the per-translation memo tables."""

    def __init__(self, budget: int):
        self.budget = budget
        self._covers_memo: dict[Formula, tuple[_Cover, ...]] = {}
        self._state_memo: dict[frozenset, tuple[_Cover, ...]] = {}

    # -- the VWAA transition function ------------------------------------------

    def covers(self, formula: Formula) -> tuple[_Cover, ...]:
        cached = self._covers_memo.get(formula)
        if cached is not None:
            return cached
        result = self._compute_covers(formula)
        self._covers_memo[formula] = result
        return result

    def _compute_covers(self, formula: Formula) -> tuple[_Cover, ...]:
        if isinstance(formula, A.TrueConst):
            return (_Cover(TRUE_LABEL, _EMPTY, _EMPTY),)
        if isinstance(formula, A.FalseConst):
            return ()
        if isinstance(formula, A.Prop):
            return (_Cover(Label.of([pos(formula.name)]), _EMPTY, _EMPTY),)
        if isinstance(formula, A.Not):
            if not isinstance(formula.operand, A.Prop):  # pragma: no cover
                raise TranslationError("negation above a non-atom after NNF")
            return (_Cover(Label.of([neg(formula.operand.name)]), _EMPTY, _EMPTY),)
        if isinstance(formula, A.And):
            return _product(self.covers(formula.left), self.covers(formula.right))
        if isinstance(formula, A.Or):
            return _prune(
                list(self.covers(formula.left)) + list(self.covers(formula.right))
            )
        if isinstance(formula, A.Next):
            return tuple(
                _Cover(TRUE_LABEL, config, _EMPTY)
                for config in _configurations(formula.operand)
            )
        if isinstance(formula, A.Until):
            # Either the right side holds now (the until is *fulfilled*) or
            # the left side holds now and the until is postponed.
            now = [
                _Cover(c.label, c.obligations, c.fulfilled | {formula})
                for c in self.covers(formula.right)
            ]
            postpone = _Cover(TRUE_LABEL, frozenset((formula,)), _EMPTY)
            later = [
                combined
                for c in self.covers(formula.left)
                if (combined := c.combine(postpone)) is not None
            ]
            return _prune(now + later)
        if isinstance(formula, A.Release):
            # The right side holds now, and either the left side also holds
            # (release discharged) or the release is postponed.
            postpone = _Cover(TRUE_LABEL, frozenset((formula,)), _EMPTY)
            choice = _prune(list(self.covers(formula.left)) + [postpone])
            return _product(self.covers(formula.right), choice)
        raise TranslationError(
            f"non-core formula reached the translator: {type(formula).__name__}"
        )

    def state_covers(self, state: frozenset) -> tuple[_Cover, ...]:
        """Covers of an obligation set (the conjunction of its members)."""
        cached = self._state_memo.get(state)
        if cached is not None:
            return cached
        result: tuple[_Cover, ...] = (_Cover(TRUE_LABEL, _EMPTY, _EMPTY),)
        for member in sorted(state, key=str):
            result = _product(result, self.covers(member))
            if not result:
                break
        self._state_memo[state] = result
        return result


@dataclass(frozen=True)
class _TgbaTransition:
    src: object
    label: Label
    dst: frozenset
    fulfilled: frozenset


#: Sentinel initial state of the generalized automaton.
_IOTA = "iota"


def _build_tgba(
    core: Formula, budget: int
) -> tuple[list[_TgbaTransition], list[frozenset], tuple[Formula, ...]]:
    """Explore obligation sets reachable from the formula and emit the
    transition-based generalized automaton."""
    translator = _Translator(budget)
    transitions: list[_TgbaTransition] = []
    states: list[frozenset] = []
    seen: set[frozenset] = set()
    frontier: list[frozenset] = []

    for cover in translator.covers(core):
        transitions.append(
            _TgbaTransition(_IOTA, cover.label, cover.obligations, cover.fulfilled)
        )
        if cover.obligations not in seen:
            seen.add(cover.obligations)
            frontier.append(cover.obligations)

    while frontier:
        state = frontier.pop()
        states.append(state)
        if len(states) > budget:
            raise TranslationError(
                f"translation exceeded the state budget of {budget} states"
            )
        for cover in translator.state_covers(state):
            transitions.append(
                _TgbaTransition(state, cover.label, cover.obligations,
                                cover.fulfilled)
            )
            if cover.obligations not in seen:
                seen.add(cover.obligations)
                frontier.append(cover.obligations)

    untils = tuple(
        dict.fromkeys(f for f in core.walk() if isinstance(f, A.Until))
    )
    return transitions, states, untils


def translate(
    formula: Formula,
    state_budget: int = DEFAULT_STATE_BUDGET,
    reduce: bool = True,
) -> BuchiAutomaton:
    """Translate an LTL formula into a Büchi automaton accepting exactly
    the runs that satisfy it (the ``BA(phi)`` of §6.2.1).

    This is the registration-time and query-time entry point of the
    broker pipeline (§3).  With ``reduce`` (the default) the automaton is
    trimmed to its live part, merged by bisimulation and canonically
    renumbered.
    """
    from .reduce import reduce_automaton

    core = nnf(formula)
    transitions, _, untils = _build_tgba(core, state_budget)

    # A transition is accepting for Until f iff f is not pending afterwards
    # or was fulfilled on the step.  Sets that accept every transition are
    # dropped: they never constrain acceptance.
    def accepts(transition: _TgbaTransition, until: Formula) -> bool:
        return until not in transition.dst or until in transition.fulfilled

    acceptance = [
        f for f in untils
        if not all(accepts(t, f) for t in transitions)
    ]
    n = len(acceptance)

    ba_transitions: list[Transition] = []
    ba_states: set = set()
    ba_final: set = set()

    if n == 0:
        for t in transitions:
            ba_transitions.append(Transition((t.src, 0), t.label, (t.dst, 0)))
            ba_states.add((t.src, 0))
            ba_states.add((t.dst, 0))
        ba_states.add((_IOTA, 0))
        ba_final = set(ba_states)
        initial = (_IOTA, 0)
    else:
        # Max-advance degeneralization over levels 0..n; level n marks a
        # completed counter cycle and is the accepting level.
        by_src: dict[object, list[_TgbaTransition]] = {}
        for t in transitions:
            by_src.setdefault(t.src, []).append(t)
        initial = (_IOTA, 0)
        ba_states.add(initial)
        frontier = [initial]
        seen_states = {initial}
        while frontier:
            state = frontier.pop()
            src, level = state
            effective = 0 if level == n else level
            for t in by_src.get(src, ()):
                advanced = effective
                while advanced < n and accepts(t, acceptance[advanced]):
                    advanced += 1
                dst = (t.dst, advanced)
                ba_transitions.append(Transition(state, t.label, dst))
                if dst not in seen_states:
                    seen_states.add(dst)
                    frontier.append(dst)
            ba_states.add(state)
        ba_states |= seen_states
        ba_final = {s for s in ba_states if s[1] == n}

    ba = BuchiAutomaton(ba_states, initial, ba_transitions, ba_final)
    if reduce:
        ba = reduce_automaton(ba)
    return ba.canonical()


def translate_text(text: str, **kwargs) -> BuchiAutomaton:
    """Convenience: parse and translate in one call."""
    from ..ltl.parser import parse

    return translate(parse(text), **kwargs)
