"""Transition labels: conjunctions of event literals.

The alphabet of the paper's Büchi automata (§2.3, §6.2.1) is the set of
*disjunction-free propositional formulas* over the event vocabulary, i.e.
conjunctions of literals.  A transition labeled ``purchase && !use`` is
enabled in a snapshot where ``purchase`` happens and ``use`` does not;
events the label does not mention are unconstrained.

Two label-level notions drive the whole system:

* **compatibility** (Definition 7, condition 3): a query label ``t`` is
  compatible with a contract label ``c`` iff (i) every event of ``t``
  belongs to the contract's vocabulary and (ii) ``c && t`` is satisfiable
  (no complementary pair of literals);
* **expansion** ``E(c)`` (§4.2): the literals of ``c`` plus *both*
  literals of every contract-vocabulary event not mentioned by ``c``.
  Expansion reduces compatibility checking to set containment, which is
  what the prefilter index exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Iterable, Iterator, Optional

from ..ltl import ast as A
from ..ltl.runs import Snapshot


@total_ordering
@dataclass(frozen=True)
class Literal:
    """A single event literal: the event occurs (positive) or does not.

    Literals order by ``(event, positive)`` so label renderings and index
    keys are deterministic.
    """

    event: str
    positive: bool = True

    def negate(self) -> "Literal":
        """The complementary literal."""
        return Literal(self.event, not self.positive)

    def holds_in(self, snap: Snapshot) -> bool:
        """Truth value of the literal in a snapshot."""
        return (self.event in snap) == self.positive

    def __lt__(self, other: "Literal") -> bool:
        return (self.event, self.positive) < (other.event, other.positive)

    def __str__(self) -> str:
        return self.event if self.positive else f"!{self.event}"


def pos(event: str) -> Literal:
    """Positive literal shorthand."""
    return Literal(event, True)


def neg(event: str) -> Literal:
    """Negative literal shorthand."""
    return Literal(event, False)


def parse_literal(text: str) -> Literal:
    """Inverse of ``str(literal)``: ``"a"`` -> positive, ``"!a"`` ->
    negative (``~`` also accepted, matching :meth:`Label.parse`)."""
    text = text.strip()
    if text.startswith(("!", "~")):
        event = text[1:].strip()
        if not event:
            raise ValueError(f"malformed literal: {text!r}")
        return Literal(event, False)
    if not text:
        raise ValueError("malformed literal: empty string")
    return Literal(text, True)


@dataclass(frozen=True)
class Label:
    """A satisfiable conjunction of literals over distinct events.

    The empty conjunction is the label ``true`` (:data:`TRUE_LABEL`).
    Construction through :meth:`of` / :meth:`conjoin` guarantees the
    no-complementary-pair invariant; the raw constructor trusts its input.
    """

    literals: frozenset[Literal]

    def __hash__(self) -> int:
        """Structural hash, cached — labels are hashed constantly by the
        compatibility caches and the set-trie."""
        cached = getattr(self, "_hash", None)
        if cached is None:
            cached = hash(self.literals)
            object.__setattr__(self, "_hash", cached)
        return cached

    # -- constructors -----------------------------------------------------------

    @classmethod
    def of(cls, literals: Iterable[Literal]) -> "Label":
        """Build a label, raising ``ValueError`` if contradictory."""
        label = cls.try_of(literals)
        if label is None:
            raise ValueError("contradictory conjunction of literals")
        return label

    @classmethod
    def try_of(cls, literals: Iterable[Literal]) -> Optional["Label"]:
        """Build a label, returning ``None`` if contradictory."""
        items = frozenset(literals)
        by_event: dict[str, bool] = {}
        for lit in items:
            seen = by_event.get(lit.event)
            if seen is not None and seen != lit.positive:
                return None
            by_event[lit.event] = lit.positive
        return cls(items)

    @classmethod
    def parse(cls, text: str) -> "Label":
        """Parse ``"a & !b"`` / ``"a && !b"`` / ``"true"`` into a label.

        Raises ``ValueError`` on malformed conjunctions — a dangling
        operator (``"a &"``), an empty conjunct (``"a & & b"``), or a
        bare negation (``"!"``) — instead of silently building literals
        with empty event names.
        """
        text = text.strip()
        if text in ("true", "1", ""):
            return TRUE_LABEL
        return cls.of(
            parse_literal(part)
            for part in text.replace("&&", "&").split("&")
        )

    # -- basic queries ------------------------------------------------------------

    @property
    def is_true(self) -> bool:
        """True for the unconstrained label (empty conjunction)."""
        return not self.literals

    def events(self) -> frozenset[str]:
        """The events the label mentions (either polarity)."""
        return frozenset(lit.event for lit in self.literals)

    def polarity(self, event: str) -> Optional[bool]:
        """The constrained polarity of ``event``, or ``None`` if free."""
        for lit in self.literals:
            if lit.event == event:
                return lit.positive
        return None

    def satisfied_by(self, snap: Snapshot) -> bool:
        """True iff every literal holds in the snapshot."""
        return all(lit.holds_in(snap) for lit in self.literals)

    def __iter__(self) -> Iterator[Literal]:
        return iter(sorted(self.literals))

    def __len__(self) -> int:
        return len(self.literals)

    # -- algebra --------------------------------------------------------------------

    def conjoin(self, other: "Label") -> Optional["Label"]:
        """The conjunction ``self && other``, or ``None`` if unsatisfiable."""
        return Label.try_of(self.literals | other.literals)

    def conflicts(self, other: "Label") -> bool:
        """True iff the conjunction of the two labels is unsatisfiable."""
        return self.conjoin(other) is None

    def restrict(self, keep: Iterable[Literal]) -> "Label":
        """Projection: keep only literals in ``keep`` (Definition 8).

        The result of dropping literals from a satisfiable conjunction is
        always satisfiable.
        """
        keep_set = frozenset(keep)
        return Label(self.literals & keep_set)

    def restrict_events(self, events: Iterable[str]) -> "Label":
        """Keep only literals whose event is in ``events``."""
        keep = frozenset(events)
        return Label(frozenset(l for l in self.literals if l.event in keep))

    def expansion(self, vocabulary: Iterable[str]) -> frozenset[Literal]:
        """The expansion ``E(self)`` w.r.t. a contract vocabulary (§4.2):
        the label's own literals plus *both* literals of every vocabulary
        event the label leaves unconstrained.

        >>> sorted(map(str, Label.parse("p & c").expansion(["p", "c", "m"])))
        ['!m', 'c', 'm', 'p']
        """
        out = set(self.literals)
        mentioned = self.events()
        for event in vocabulary:
            if event not in mentioned:
                out.add(pos(event))
                out.add(neg(event))
        return frozenset(out)

    def implies(self, other: "Label") -> bool:
        """True iff every snapshot satisfying ``self`` satisfies ``other``
        (i.e. ``other``'s literals are a subset of ``self``'s)."""
        return other.literals <= self.literals

    def pick_snapshot(self) -> Snapshot:
        """A concrete snapshot satisfying the label: positively
        constrained events happen, every other event — negatively
        constrained or unmentioned — does not."""
        return frozenset(l.event for l in self.literals if l.positive)

    def __str__(self) -> str:
        if self.is_true:
            return "true"
        return " & ".join(str(lit) for lit in sorted(self.literals))

    def sort_key(self) -> tuple:
        """Deterministic ordering key for rendering and canonicalization
        (computed once per label — automaton constructors sort by it)."""
        cached = getattr(self, "_sort_key", None)
        if cached is None:
            cached = tuple(
                sorted((l.event, l.positive) for l in self.literals)
            )
            object.__setattr__(self, "_sort_key", cached)
        return cached


#: The unconstrained label (``true``).
TRUE_LABEL = Label(frozenset())


def compatible(contract_label: Label, query_label: Label,
               contract_vocabulary: frozenset[str]) -> bool:
    """Condition 3 of Definition 7: the query label refers only to events
    of the contract, and the two labels do not conflict.

    Note that the check is asymmetric — the *contract* label may mention
    events outside the query — and that it depends on the contract's full
    vocabulary, not just the events of ``contract_label``; this is what
    makes the permission semantics robust to underspecified contracts
    (§2.1).
    """
    if not query_label.events() <= contract_vocabulary:
        return False
    return not contract_label.conflicts(query_label)


def label_from_formula(formula: A.Formula) -> Label:
    """Convert a disjunction-free propositional formula (the paper's Σ)
    into a :class:`Label`; raises ``ValueError`` on anything else or on a
    contradictory conjunction."""
    literals: list[Literal] = []
    stack = [formula]
    while stack:
        node = stack.pop()
        if isinstance(node, A.TrueConst):
            continue
        if isinstance(node, A.And):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, A.Prop):
            literals.append(pos(node.name))
        elif isinstance(node, A.Not) and isinstance(node.operand, A.Prop):
            literals.append(neg(node.operand.name))
        else:
            raise ValueError(f"not a conjunction of literals: {formula}")
    return Label.of(literals)


def label_to_formula(label: Label) -> A.Formula:
    """Inverse of :func:`label_from_formula`."""
    parts: list[A.Formula] = []
    for lit in sorted(label.literals):
        prop = A.Prop(lit.event)
        parts.append(prop if lit.positive else A.Not(prop))
    return A.conj(parts)
