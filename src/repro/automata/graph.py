"""Generic directed-graph algorithms used across the automata stack.

Everything here operates on plain adjacency mappings
(``node -> iterable of successor nodes``) so the same code serves the
Büchi automata, their products, and the query-BA analysis of the
prefilter (Algorithm 1 needs strongly connected components; the seeds
optimization of §6.2.4 needs "states on a cycle through a final state").

Tarjan's algorithm is implemented iteratively: contract automata products
can be deep enough to blow Python's recursion limit.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping, TypeVar

Node = TypeVar("Node", bound=Hashable)

Adjacency = Mapping


def strongly_connected_components(
    nodes: Iterable[Node],
    successors: Callable[[Node], Iterable[Node]],
) -> list[list[Node]]:
    """Tarjan's SCC algorithm (iterative), in reverse topological order.

    Returns a list of components; each component is a list of nodes.
    Components appear in reverse topological order of the condensation
    (every edge between components goes from a later list entry to an
    earlier one).
    """
    index_of: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    components: list[list[Node]] = []
    counter = 0

    for root in nodes:
        if root in index_of:
            continue
        # Iterative DFS: work items are (node, iterator over successors).
        work: list[tuple[Node, Iterable]] = [(root, iter(successors(root)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(successors(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[Node] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def scc_ids(
    nodes: Iterable[Node],
    successors: Callable[[Node], Iterable[Node]],
) -> dict[Node, int]:
    """Map each node to the id of its SCC (ids follow the reverse
    topological order of :func:`strongly_connected_components`)."""
    out: dict[Node, int] = {}
    for i, component in enumerate(strongly_connected_components(nodes, successors)):
        for node in component:
            out[node] = i
    return out


def is_cyclic_component(
    component: Iterable[Node],
    successors: Callable[[Node], Iterable[Node]],
) -> bool:
    """True iff the SCC contains a cycle: it has more than one node, or its
    single node has a self-loop.  Only cyclic components can carry the
    knot of a lasso path."""
    members = list(component)
    if len(members) > 1:
        return True
    node = members[0]
    return any(succ == node for succ in successors(node))


def reachable_from(
    start: Node,
    successors: Callable[[Node], Iterable[Node]],
) -> set[Node]:
    """All nodes reachable from ``start`` (including itself)."""
    seen: set[Node] = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for succ in successors(node):
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return seen


def backward_reachable(
    targets: Iterable[Node],
    nodes: Iterable[Node],
    successors: Callable[[Node], Iterable[Node]],
) -> set[Node]:
    """All nodes from which some node in ``targets`` is reachable.

    Builds the reverse adjacency once, then floods backwards.
    """
    predecessors: dict[Node, list[Node]] = {}
    for node in nodes:
        for succ in successors(node):
            predecessors.setdefault(succ, []).append(node)
    seen: set[Node] = set(targets)
    frontier = list(seen)
    while frontier:
        node = frontier.pop()
        for pred in predecessors.get(node, ()):
            if pred not in seen:
                seen.add(pred)
                frontier.append(pred)
    return seen


def states_on_accepting_cycles(
    nodes: Iterable[Node],
    successors: Callable[[Node], Iterable[Node]],
    is_final: Callable[[Node], bool],
) -> set[Node]:
    """States that lie on some cycle containing a final state.

    In a strongly connected component every pair of nodes lies on a common
    cycle, so the answer is: all members of cyclic SCCs that contain at
    least one final state.  This is the precomputation behind the *seeds*
    optimization (§6.2.4).
    """
    out: set[Node] = set()
    for component in strongly_connected_components(nodes, successors):
        if not any(is_final(n) for n in component):
            continue
        if is_cyclic_component(component, successors):
            out.update(component)
    return out
