"""Bisimulation partition refinement and quotient automata.

This is the engine behind the paper's §5 optimization: collapsing
bisimilar states of (projected) contract BAs yields smaller automata that
are *equivalent* for permission checking (Theorems 8 and 9).  It is also
reused as a generic state-reduction pass after LTL translation.

Definition 9 of the paper: states ``a ~ b`` iff

1. ``a`` is final iff ``b`` is final, and
2. for every edge ``a --λ--> a'`` there is ``b --λ--> b'`` with
   ``a' ~ b'``, and vice versa.

The coarsest such relation is computed by *signature refinement*: start
from the {final, non-final} partition (possibly pre-refined by a caller-
supplied partition — see :func:`bisimulation_partition`'s ``seed``) and
repeatedly split blocks by the multiset of ``(label, successor block)``
pairs until stable.  Seeding is what makes the all-subsets projection
computation of §5.3 cheap: by Theorem 3 the partition for a literal set
``L' ⊇ L`` refines the one for ``L``, so refinement can resume from the
parent's partition instead of restarting from scratch.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from .buchi import BuchiAutomaton, Transition, _state_key
from .labels import Label

State = Hashable

#: A partition is a mapping from state to block id; block ids are dense
#: integers but carry no meaning beyond identity.
Partition = dict


def initial_partition(ba: BuchiAutomaton) -> Partition:
    """The {final, non-final} split (point 1 of Definition 9)."""
    out: Partition = {}
    for state in ba.states:
        out[state] = 1 if state in ba.final else 0
    return out


def refine_once(ba: BuchiAutomaton, partition: Partition) -> Partition:
    """One global signature-splitting round; returns a (possibly) finer
    partition with freshly numbered blocks."""
    signatures: dict[State, tuple] = {}
    for state in ba.states:
        signature = frozenset(
            (label, partition[dst]) for label, dst in ba.successors(state)
        )
        signatures[state] = (partition[state], signature)
    renumber: dict[tuple, int] = {}
    out: Partition = {}
    for state in sorted(ba.states, key=_state_key):
        key = signatures[state]
        block = renumber.get(key)
        if block is None:
            block = len(renumber)
            renumber[key] = block
        out[state] = block
    return out


def bisimulation_partition(
    ba: BuchiAutomaton,
    seed: Partition | None = None,
) -> Partition:
    """The coarsest bisimulation partition of ``ba`` (Definition 9).

    Args:
        ba: the automaton.
        seed: an optional partition known to be *coarser* than (or equal
            to) the target — typically the partition of a smaller literal
            projection (Theorem 3).  Refinement resumes from it, saving
            the early rounds.  It is intersected with the final/non-final
            split, so a caller cannot accidentally violate point 1.
    """
    current = initial_partition(ba)
    if seed is not None:
        # Intersect the seed with the base split: block identity becomes
        # the pair (seed block, final flag).
        renumber: dict[tuple, int] = {}
        merged: Partition = {}
        for state in sorted(ba.states, key=_state_key):
            key = (seed[state], current[state])
            block = renumber.get(key)
            if block is None:
                block = len(renumber)
                renumber[key] = block
            merged[state] = block
        current = merged

    while True:
        refined = refine_once(ba, current)
        if _block_count(refined) == _block_count(current):
            return refined
        current = refined


def _block_count(partition: Partition) -> int:
    return len(set(partition.values()))


def blocks_of(partition: Partition) -> list[frozenset]:
    """The partition as a list of state blocks, ordered by block id."""
    by_id: dict[int, set] = {}
    for state, block in partition.items():
        by_id.setdefault(block, set()).add(state)
    return [frozenset(by_id[i]) for i in sorted(by_id)]


def quotient(ba: BuchiAutomaton, partition: Partition) -> BuchiAutomaton:
    """The quotient automaton of Definition 10.

    States are block ids; the initial state is the block of the original
    initial state; a block is final iff it contains only final states
    (blocks are final-pure because refinement starts from the
    final/non-final split); transitions are the images of the original
    ones, deduplicated.
    """
    block_ids = set(partition.values())
    transitions: set[tuple[int, Label, int]] = set()
    for t in ba.transitions():
        transitions.add((partition[t.src], t.label, partition[t.dst]))
    impure = {partition[s] for s in ba.states if s not in ba.final}
    final = block_ids - impure
    return BuchiAutomaton(
        block_ids,
        partition[ba.initial],
        [Transition(src, label, dst) for src, label, dst in transitions],
        final,
    )


def quotient_by_bisimulation(ba: BuchiAutomaton) -> BuchiAutomaton:
    """Convenience: quotient by the coarsest bisimulation."""
    return quotient(ba, bisimulation_partition(ba))


def partition_signature(partition: Partition) -> frozenset:
    """A canonical, block-id-independent fingerprint of a partition: the
    frozenset of its blocks.  Two partitions with equal signatures induce
    identical quotients; the projection store uses this to deduplicate
    (the paper observed ~5% distinct partitions across subsets, §5.2)."""
    return frozenset(blocks_of(partition))
