"""Flat integer/bitset encoding of Büchi automata (ROADMAP item 2).

The object deciders in :mod:`repro.core.permission` walk
:class:`~repro.automata.buchi.BuchiAutomaton` graphs whose every step
hashes :class:`~repro.automata.labels.Label` / ``frozenset`` objects.
This module re-encodes an automaton once — at registration time — into a
form the hot loop can traverse with nothing but machine integers:

* **events** become bit positions in a per-contract vocabulary index;
* **labels** become ``(positive_mask, negative_mask)`` pairs of Python
  ints, deduplicated into a per-automaton label-class table;
* **states** become dense ints ``0..n-1``;
* **adjacency** becomes a CSR-style triple of ``array('q')`` rows
  (``offsets`` / ``trans_labels`` / ``trans_dsts``) preserving the exact
  per-state transition order of :meth:`BuchiAutomaton.successors`;
* **final states** become one bitset int.

Definition-7 compatibility then collapses to bitwise tests: a query
label is *admissible* iff every event bit it uses maps into the contract
vocabulary, and two labels *conflict* iff
``(c.pos & t.neg) | (c.neg & t.pos)`` is non-zero.
:func:`bind_query` precomputes both per label *class* (not per
transition), so the product search in
:func:`repro.core.permission.permits_ndfs_encoded` /
:func:`repro.core.permission.permits_scc_encoded` only ever shifts ints.

Two invariants the rest of the system relies on:

* **order preservation** — the CSR rows list each state's transitions in
  the same order the object automaton yields them, so the encoded
  deciders visit product pairs in exactly the object deciders' order and
  report bit-identical :class:`~repro.core.permission.PermissionStats`;
* **vocabulary soundness** — contract-label literals on events outside
  the supplied vocabulary are dropped from the masks.  This is exact,
  not an approximation: an admissible query label cannot cite such an
  event (condition (i) of Definition 7), so the dropped literals can
  never participate in a conflict with an admissible query label.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..errors import AutomatonError
from .buchi import BuchiAutomaton, State, _state_key
from .labels import Label


def _iter_bits(mask: int):
    """Yield the set bit positions of ``mask`` (ascending)."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class EncodedAutomaton:
    """A :class:`BuchiAutomaton` re-encoded into flat int/bitset form.

    Instances are immutable value objects built by
    :func:`encode_automaton` (or restored by :meth:`from_dict`).  The
    encoding is purely structural — it keeps a back-reference
    (``states``) from encoded ids to the original state values so
    results can be translated back when needed.
    """

    __slots__ = (
        "events", "event_index", "num_states", "initial", "final_mask",
        "offsets", "trans_labels", "trans_dsts", "label_pos", "label_neg",
        "states", "state_index",
    )

    def __init__(
        self,
        *,
        events: tuple[str, ...],
        num_states: int,
        initial: int,
        final_mask: int,
        offsets: array,
        trans_labels: array,
        trans_dsts: array,
        label_pos: tuple[int, ...],
        label_neg: tuple[int, ...],
        states: tuple[State, ...],
    ):
        self.events = events
        self.event_index: dict[str, int] = {e: i for i, e in enumerate(events)}
        self.num_states = num_states
        self.initial = initial
        self.final_mask = final_mask
        self.offsets = offsets
        self.trans_labels = trans_labels
        self.trans_dsts = trans_dsts
        self.label_pos = label_pos
        self.label_neg = label_neg
        self.states = states
        self.state_index: dict[State, int] = {s: i for i, s in enumerate(states)}

    # -- queries -----------------------------------------------------------------

    @property
    def num_transitions(self) -> int:
        return len(self.trans_dsts)

    @property
    def num_label_classes(self) -> int:
        return len(self.label_pos)

    def state_mask(self, states: Iterable[State]) -> int:
        """A bitset over encoded state ids for a set of *original* states
        (e.g. a precomputed seed set)."""
        mask = 0
        for state in states:
            mask |= 1 << self.state_index[state]
        return mask

    def is_final(self, state_id: int) -> bool:
        return bool((self.final_mask >> state_id) & 1)

    def successor_ids(self, state_id: int):
        """Destination ids of ``state_id``'s transitions (CSR slice)."""
        return self.trans_dsts[self.offsets[state_id]:self.offsets[state_id + 1]]

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form (masks are arbitrary-precision ints, which JSON
        carries natively)."""
        return {
            "events": list(self.events),
            "states": list(self.states),
            "initial": self.initial,
            "final": [i for i in range(self.num_states) if self.is_final(i)],
            "offsets": list(self.offsets),
            "trans_labels": list(self.trans_labels),
            "trans_dsts": list(self.trans_dsts),
            "label_pos": list(self.label_pos),
            "label_neg": list(self.label_neg),
        }

    @classmethod
    def from_dict(cls, ba: BuchiAutomaton, data: Mapping) -> "EncodedAutomaton":
        """Restore an encoding and structurally validate it against the
        automaton it claims to encode.

        The validation is cheap — state set, initial/final states,
        transition counts and id ranges — and raises
        :class:`~repro.errors.AutomatonError` on any mismatch so the
        persistence layer's fallback ladder rebuilds the encoding from
        the automaton instead of trusting a stale artifact.  (Bit-level
        corruption of the masks is the checksum layer's job.)
        """
        try:
            events = tuple(str(e) for e in data["events"])
            states = tuple(data["states"])
            initial = int(data["initial"])
            final_ids = [int(i) for i in data["final"]]
            offsets = array("q", data["offsets"])
            trans_labels = array("q", data["trans_labels"])
            trans_dsts = array("q", data["trans_dsts"])
            label_pos = tuple(int(m) for m in data["label_pos"])
            label_neg = tuple(int(m) for m in data["label_neg"])
        except (KeyError, TypeError, ValueError) as exc:
            raise AutomatonError(f"malformed encoded automaton: {exc}") from exc

        n = len(states)
        if list(events) != sorted(set(events)):
            raise AutomatonError("encoded events must be sorted and unique")
        if set(states) != ba.states or len(states) != len(ba.states):
            raise AutomatonError("encoded state table does not match automaton")
        if not (0 <= initial < n) or states[initial] != ba.initial:
            raise AutomatonError("encoded initial state does not match automaton")
        if {states[i] for i in final_ids if 0 <= i < n} != ba.final or any(
            not (0 <= i < n) for i in final_ids
        ):
            raise AutomatonError("encoded final states do not match automaton")
        if len(offsets) != n + 1 or offsets[0] != 0 or offsets[-1] != len(trans_dsts):
            raise AutomatonError("encoded offsets are inconsistent")
        if any(offsets[i] > offsets[i + 1] for i in range(n)):
            raise AutomatonError("encoded offsets are not monotone")
        if len(trans_labels) != len(trans_dsts) or len(trans_dsts) != ba.num_transitions:
            raise AutomatonError("encoded transition count does not match automaton")
        if len(label_pos) != len(label_neg):
            raise AutomatonError("encoded label table is ragged")
        num_labels = len(label_pos)
        if any(not (0 <= l < num_labels) for l in trans_labels):
            raise AutomatonError("encoded transition cites unknown label class")
        if any(not (0 <= d < n) for d in trans_dsts):
            raise AutomatonError("encoded transition cites unknown state")

        final_mask = 0
        for i in final_ids:
            final_mask |= 1 << i
        return cls(
            events=events,
            num_states=n,
            initial=initial,
            final_mask=final_mask,
            offsets=offsets,
            trans_labels=trans_labels,
            trans_dsts=trans_dsts,
            label_pos=label_pos,
            label_neg=label_neg,
            states=states,
        )

    def __repr__(self) -> str:
        return (
            f"EncodedAutomaton(states={self.num_states}, "
            f"transitions={self.num_transitions}, "
            f"label_classes={self.num_label_classes}, "
            f"events={len(self.events)})"
        )


def _label_masks(label: Label, event_index: Mapping[str, int]) -> tuple[int, int]:
    """The ``(positive_mask, negative_mask)`` of a label over an event
    index; literals on unindexed events are dropped (see module notes on
    vocabulary soundness)."""
    pos_mask = 0
    neg_mask = 0
    for lit in label.literals:
        bit = event_index.get(lit.event)
        if bit is None:
            continue
        if lit.positive:
            pos_mask |= 1 << bit
        else:
            neg_mask |= 1 << bit
    return pos_mask, neg_mask


def encode_automaton(
    ba: BuchiAutomaton,
    vocabulary: Iterable[str] | None = None,
) -> EncodedAutomaton:
    """Encode ``ba`` over ``vocabulary`` (defaults to the events its
    labels mention).

    For a *contract* automaton pass the contract's full spec vocabulary:
    admissibility of query labels (Definition 7, condition (i)) is
    decided against the encoded ``events``, and a spec may cite events
    its reduced BA no longer mentions.  Query automata are encoded over
    their own label events and rebased onto a contract's vocabulary by
    :func:`bind_query`.
    """
    events = tuple(sorted(vocabulary if vocabulary is not None else ba.events()))
    event_index = {e: i for i, e in enumerate(events)}

    states = tuple(sorted(ba.states, key=_state_key))
    state_index = {s: i for i, s in enumerate(states)}

    label_ids: dict[tuple[int, int], int] = {}
    label_pos: list[int] = []
    label_neg: list[int] = []
    offsets = array("q", [0])
    trans_labels = array("q")
    trans_dsts = array("q")
    for state in states:
        for label, dst in ba.successors(state):
            masks = _label_masks(label, event_index)
            label_id = label_ids.get(masks)
            if label_id is None:
                label_id = len(label_pos)
                label_ids[masks] = label_id
                label_pos.append(masks[0])
                label_neg.append(masks[1])
            trans_labels.append(label_id)
            trans_dsts.append(state_index[dst])
        offsets.append(len(trans_dsts))

    final_mask = 0
    for state in ba.final:
        final_mask |= 1 << state_index[state]

    return EncodedAutomaton(
        events=events,
        num_states=len(states),
        initial=state_index[ba.initial],
        final_mask=final_mask,
        offsets=offsets,
        trans_labels=trans_labels,
        trans_dsts=trans_dsts,
        label_pos=tuple(label_pos),
        label_neg=tuple(label_neg),
        states=states,
    )


@dataclass(frozen=True)
class QueryBinding:
    """A query encoding rebased onto one contract's vocabulary.

    ``compat[q]`` is a bitset over the *contract's* label classes: bit
    ``c`` is set iff query label class ``q`` is admissible and does not
    conflict with contract label class ``c`` — i.e. the full Definition-7
    label test, precomputed once per (contract, query) pair.
    ``admissible[q]`` is kept separately for introspection; an
    inadmissible class always has an all-zero compat row.
    """

    admissible: tuple[bool, ...]
    compat: tuple[int, ...]


def bind_query(
    contract: EncodedAutomaton, query: EncodedAutomaton
) -> QueryBinding:
    """Precompute the per-label-class compatibility table between an
    encoded contract and an encoded query."""
    event_index = contract.event_index
    query_events = query.events
    c_pos = contract.label_pos
    c_neg = contract.label_neg
    num_contract_labels = len(c_pos)

    admissible: list[bool] = []
    compat: list[int] = []
    for q_pos, q_neg in zip(query.label_pos, query.label_neg):
        pos_mask = 0
        neg_mask = 0
        ok = True
        for bit in _iter_bits(q_pos):
            mapped = event_index.get(query_events[bit])
            if mapped is None:
                ok = False
                break
            pos_mask |= 1 << mapped
        if ok:
            for bit in _iter_bits(q_neg):
                mapped = event_index.get(query_events[bit])
                if mapped is None:
                    ok = False
                    break
                neg_mask |= 1 << mapped
        admissible.append(ok)
        if not ok:
            compat.append(0)
            continue
        row = 0
        for c in range(num_contract_labels):
            if not ((c_pos[c] & neg_mask) | (c_neg[c] & pos_mask)):
                row |= 1 << c
        compat.append(row)
    return QueryBinding(admissible=tuple(admissible), compat=tuple(compat))
