"""Generalized Büchi automata and their degeneralization.

The tableau construction of :mod:`repro.automata.ltl2ba` naturally yields
a *generalized* Büchi automaton (GBA): acceptance is a family of state
sets ``F_1..F_n``, and a run is accepted iff it visits every ``F_i``
infinitely often.  The classical counter construction converts a GBA into
an equivalent plain BA — the representation the rest of the paper's
machinery (and this library) operates on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from ..errors import AutomatonError
from .buchi import BuchiAutomaton, Transition
from .labels import Label

State = Hashable


@dataclass(frozen=True)
class GeneralizedBuchi:
    """A GBA with a single initial state and state-based acceptance sets."""

    states: frozenset
    initial: State
    transitions: tuple[tuple[State, Label, State], ...]
    acceptance_sets: tuple[frozenset, ...]

    def __post_init__(self) -> None:
        if self.initial not in self.states:
            raise AutomatonError("initial state is not a state")
        for src, _, dst in self.transitions:
            if src not in self.states or dst not in self.states:
                raise AutomatonError("transition uses unknown state")
        for acc in self.acceptance_sets:
            if not acc <= self.states:
                raise AutomatonError("acceptance set is not a subset of states")

    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_transitions(self) -> int:
        return len(self.transitions)

    def nontrivial_acceptance_sets(self) -> tuple[frozenset, ...]:
        """Acceptance sets other than the full state set.

        A set equal to all states is visited infinitely often by every
        infinite run, so it never constrains acceptance; dropping such
        sets before degeneralization avoids pointless state copies.
        """
        return tuple(acc for acc in self.acceptance_sets if acc != self.states)

    def degeneralize(self) -> BuchiAutomaton:
        """The classical counter construction.

        With acceptance sets ``F_0..F_{n-1}``, states become pairs
        ``(q, i)`` where the counter ``i`` means "waiting to visit F_i".
        Leaving a state whose ``q ∈ F_i`` advances the counter (mod n);
        the accepting states are ``{(q, 0) | q ∈ F_0}``: they are visited
        infinitely often iff the counter completes full cycles infinitely
        often, i.e. iff every ``F_i`` is visited infinitely often.

        With zero (nontrivial) acceptance sets every state is accepting
        and the structure is copied verbatim.
        """
        acceptance = self.nontrivial_acceptance_sets()
        n = len(acceptance)
        if n == 0:
            return BuchiAutomaton(
                self.states,
                self.initial,
                [Transition(src, label, dst) for src, label, dst in self.transitions],
                self.states,
            )

        def advance(counter: int, state: State) -> int:
            if state in acceptance[counter]:
                return (counter + 1) % n
            return counter

        states = [(q, i) for q in self.states for i in range(n)]
        transitions = []
        for src, label, dst in self.transitions:
            for i in range(n):
                transitions.append(
                    Transition((src, i), label, (dst, advance(i, src)))
                )
        final = [(q, 0) for q in acceptance[0]]
        return BuchiAutomaton(states, (self.initial, 0), transitions, final)
