"""HOA (Hanoi Omega-Automata) format support.

The HOA format (http://adl.github.io/hoaf/) is the lingua franca of the
ω-automata ecosystem (Spot, Owl, ltl2tgba, ...).  Exporting the broker's
contract automata lets users cross-check them against those tools — the
closest modern equivalent of the paper's reliance on LTL2BA [12] — and
importing lets automata produced elsewhere be registered as contracts.

Only the fragment this library produces is supported: state-based Büchi
acceptance (``Acceptance: 1 Inf(0)``), a single initial state, and
transition labels that are conjunctions of atomic propositions or their
negations (``t`` for the unconstrained label).
"""

from __future__ import annotations

import re
from typing import Iterable

from ..errors import AutomatonError
from .buchi import BuchiAutomaton, Transition
from .labels import TRUE_LABEL, Label, neg, pos


def to_hoa(ba: BuchiAutomaton, name: str = "contract") -> str:
    """Serialize ``ba`` in HOA v1 (state-based Büchi acceptance)."""
    canonical = ba.canonical()
    propositions = sorted(canonical.events())
    index_of = {event: i for i, event in enumerate(propositions)}

    def encode(label: Label) -> str:
        if label.is_true:
            return "t"
        parts = []
        for literal in sorted(label.literals):
            token = str(index_of[literal.event])
            parts.append(token if literal.positive else f"!{token}")
        return " & ".join(parts)

    lines = [
        "HOA: v1",
        f'name: "{name}"',
        f"States: {canonical.num_states}",
        f"Start: {canonical.initial}",
        f"AP: {len(propositions)} "
        + " ".join(f'"{p}"' for p in propositions)
        if propositions
        else "AP: 0",
        "acc-name: Buchi",
        "Acceptance: 1 Inf(0)",
        "properties: trans-labels explicit-labels state-acc",
        "--BODY--",
    ]
    for state in range(canonical.num_states):
        acc = " {0}" if state in canonical.final else ""
        lines.append(f"State: {state}{acc}")
        for label, dst in canonical.successors(state):
            lines.append(f"  [{encode(label)}] {dst}")
    lines.append("--END--")
    return "\n".join(lines)


_HEADER_RE = re.compile(r"^(\w[\w-]*):\s*(.*)$")
_STATE_RE = re.compile(r"^State:\s*(\d+)\s*(\{[\d\s]*\})?\s*$")
_EDGE_RE = re.compile(r"^\[(.*)\]\s*(\d+)\s*$")


def from_hoa(text: str) -> BuchiAutomaton:
    """Parse the HOA fragment produced by :func:`to_hoa`.

    Raises :class:`AutomatonError` on anything outside the supported
    fragment (multiple start states, non-Büchi acceptance, disjunctive
    labels).
    """
    headers: dict[str, str] = {}
    body: list[str] = []
    in_body = False
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line == "--BODY--":
            in_body = True
            continue
        if line == "--END--":
            break
        if in_body:
            body.append(line)
        else:
            match = _HEADER_RE.match(line)
            if match:
                headers[match.group(1)] = match.group(2).strip()

    if headers.get("HOA") != "v1":
        raise AutomatonError("expected 'HOA: v1'")
    acceptance = headers.get("Acceptance", "")
    if acceptance.replace(" ", "") != "1Inf(0)":
        raise AutomatonError(
            f"unsupported acceptance: {acceptance!r} (need Büchi)"
        )
    try:
        num_states = int(headers["States"])
        initial = int(headers["Start"])
    except (KeyError, ValueError) as exc:
        raise AutomatonError(f"malformed HOA headers: {exc}") from exc
    if " " in headers.get("Start", "").strip():
        raise AutomatonError("multiple start states are not supported")

    propositions = _parse_ap(headers.get("AP", "0"))

    transitions: list[Transition] = []
    final: set[int] = set()
    current: int | None = None
    for line in body:
        state_match = _STATE_RE.match(line)
        if state_match:
            current = int(state_match.group(1))
            if state_match.group(2):
                final.add(current)
            continue
        edge_match = _EDGE_RE.match(line)
        if edge_match:
            if current is None:
                raise AutomatonError("edge before any 'State:' line")
            label = _parse_label(edge_match.group(1), propositions)
            transitions.append(
                Transition(current, label, int(edge_match.group(2)))
            )
            continue
        raise AutomatonError(f"unsupported HOA body line: {line!r}")

    return BuchiAutomaton(range(num_states), initial, transitions, final)


def _parse_ap(text: str) -> list[str]:
    parts = text.split(None, 1)
    count = int(parts[0])
    names = re.findall(r'"((?:[^"\\]|\\.)*)"', parts[1] if len(parts) > 1 else "")
    if len(names) != count:
        raise AutomatonError(
            f"AP header declares {count} propositions, found {len(names)}"
        )
    return names


def _parse_label(text: str, propositions: list[str]) -> Label:
    text = text.strip()
    if text in ("t", ""):
        return TRUE_LABEL
    if "|" in text:
        raise AutomatonError(
            "disjunctive HOA labels are outside the supported fragment"
        )
    literals = []
    for token in text.split("&"):
        token = token.strip()
        negated = token.startswith("!")
        if negated:
            token = token[1:].strip()
        try:
            event = propositions[int(token)]
        except (ValueError, IndexError) as exc:
            raise AutomatonError(f"bad AP reference {token!r}") from exc
        literals.append(neg(event) if negated else pos(event))
    label = Label.try_of(literals)
    if label is None:
        raise AutomatonError(f"contradictory HOA label: {text!r}")
    return label
