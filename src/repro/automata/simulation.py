"""Direct-simulation reduction of Büchi automata.

Bisimulation (used by §5 of the paper and our post-translation
reduction) only merges states with *identical* branching behavior.
Direct simulation is the classical finer tool — LTL2BA [12] itself
applies it — and preserves the language under two transformations:

* **quotienting** by mutual direct similarity (``s ≤ t`` and ``t ≤ s``);
* **pruning dominated transitions**: if ``s --λ--> u`` and
  ``s --λ' --> v`` with ``λ' ⊆ λ`` (the weaker guard fires whenever the
  stronger does) and ``u ≤ v``, the stronger transition is redundant.

Direct simulation ``s ≤ t`` holds when ``t`` can do — with guards at
least as permissive and at least the same acceptance — whatever ``s``
can, forever:

1. if ``s`` is final then ``t`` is final, and
2. for every ``s --λ--> s'`` there is ``t --λ'--> t'`` with
   ``λ' ⊆ λ`` (as literal sets) and ``s' ≤ t'``.

The relation is computed as a greatest fixpoint over state pairs —
quadratic in states times transitions, fine at contract-automaton sizes.
This module is offered as an *optional* extra reduction
(:func:`reduce_with_simulation`); the default pipeline sticks to the
paper's bisimulation.
"""

from __future__ import annotations

from typing import Hashable

from .buchi import BuchiAutomaton, Transition

State = Hashable


def direct_simulation(ba: BuchiAutomaton) -> set[tuple[State, State]]:
    """The direct-simulation preorder as a set of ``(smaller, larger)``
    pairs (reflexive by construction)."""
    states = list(ba.states)
    # start from the coarsest candidate relation honoring condition 1
    relation: set[tuple[State, State]] = {
        (s, t)
        for s in states
        for t in states
        if (s not in ba.final) or (t in ba.final)
    }

    def simulates_step(s: State, t: State) -> bool:
        for label_s, dst_s in ba.successors(s):
            matched = False
            for label_t, dst_t in ba.successors(t):
                if label_t.literals <= label_s.literals and (
                    (dst_s, dst_t) in relation
                ):
                    matched = True
                    break
            if not matched:
                return False
        return True

    changed = True
    while changed:
        changed = False
        for pair in list(relation):
            s, t = pair
            if s == t:
                continue
            if not simulates_step(s, t):
                relation.discard(pair)
                changed = True
    return relation


def quotient_by_simulation(ba: BuchiAutomaton) -> BuchiAutomaton:
    """Merge mutually similar states (simulation equivalence).

    Language-preserving for direct simulation: mutually similar states
    accept the same continuations with the same acceptance.
    """
    relation = direct_simulation(ba)
    representative: dict[State, State] = {}
    ordered = sorted(ba.states, key=lambda s: str(s))
    for state in ordered:
        if state in representative:
            continue
        representative[state] = state
        for other in ordered:
            if other in representative:
                continue
            if (state, other) in relation and (other, state) in relation:
                representative[other] = state
    transitions = {
        (representative[t.src], t.label, representative[t.dst])
        for t in ba.transitions()
    }
    states = set(representative.values())
    final = {representative[s] for s in ba.final}
    return BuchiAutomaton(
        states,
        representative[ba.initial],
        [Transition(src, label, dst) for src, label, dst in transitions],
        final,
    )


def prune_dominated_transitions(ba: BuchiAutomaton) -> BuchiAutomaton:
    """Drop transitions subsumed by a sibling with a weaker guard and a
    simulating destination (LTL2BA's transition-implication rule)."""
    relation = direct_simulation(ba)
    kept: list[Transition] = []
    for src in ba.states:
        outgoing = list(ba.successors(src))
        for i, (label_i, dst_i) in enumerate(outgoing):
            dominated = False
            for j, (label_j, dst_j) in enumerate(outgoing):
                if i == j:
                    continue
                if not label_j.literals <= label_i.literals:
                    continue
                if (dst_i, dst_j) not in relation:
                    continue
                if label_j.literals == label_i.literals and dst_i == dst_j:
                    # identical twins: keep only the first
                    dominated = j < i
                else:
                    # strict domination needs a tie-break when mutual
                    dominated = not (
                        label_i.literals <= label_j.literals
                        and (dst_j, dst_i) in relation
                        and j > i
                    )
                if dominated:
                    break
            if not dominated:
                kept.append(Transition(src, label_i, dst_i))
    return BuchiAutomaton(ba.states, ba.initial, kept, ba.final)


def reduce_with_simulation(ba: BuchiAutomaton) -> BuchiAutomaton:
    """The full optional pipeline: simulation quotient, dominated-edge
    pruning, then the standard structural reduction."""
    from .reduce import reduce_automaton

    ba = quotient_by_simulation(ba)
    ba = prune_dominated_transitions(ba)
    return reduce_automaton(ba)
