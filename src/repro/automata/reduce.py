"""Structural reduction of Büchi automata.

The tableau translation tends to produce automata with unreachable
states, states that cannot contribute to any accepting run, and many
bisimilar duplicates (degeneralization copies in particular).  This
module trims all three, preserving the accepted language exactly:

* :func:`remove_unreachable` — drop states unreachable from the initial
  state;
* :func:`remove_dead` — drop states from which no accepting cycle is
  reachable (a run through them can never satisfy the lasso acceptance
  condition);
* :func:`quotient_by_bisimulation` (re-exported from
  :mod:`repro.automata.bisim`) — merge bisimilar states;
* :func:`reduce_automaton` — the composition, used by the translator and
  available to users who build automata by hand.

Reduction matters beyond translation speed: smaller contract BAs make the
permission product smaller, and fewer distinct labels make the prefilter
index and the projection store cheaper.
"""

from __future__ import annotations

from . import graph
from .bisim import quotient_by_bisimulation
from .buchi import BuchiAutomaton, Transition


def empty_automaton() -> BuchiAutomaton:
    """The canonical empty-language automaton: a single non-final initial
    state with no transitions."""
    return BuchiAutomaton([0], 0, [], [])


def remove_unreachable(ba: BuchiAutomaton) -> BuchiAutomaton:
    """Restrict to the states reachable from the initial state."""
    keep = graph.reachable_from(ba.initial, ba.successor_states)
    if keep == ba.states:
        return ba
    return _restrict(ba, keep)


def remove_dead(ba: BuchiAutomaton) -> BuchiAutomaton:
    """Restrict to states from which an accepting cycle is reachable.

    A state contributes to the language only if some lasso through it
    exists, i.e. it can reach a cyclic SCC containing a final state.  If
    the initial state itself is dead the language is empty and the
    canonical empty automaton is returned.
    """
    reachable = graph.reachable_from(ba.initial, ba.successor_states)
    cores = graph.states_on_accepting_cycles(
        reachable, ba.successor_states, ba.is_final
    )
    if not cores:
        return empty_automaton()
    live = graph.backward_reachable(cores, reachable, ba.successor_states)
    live &= reachable
    if ba.initial not in live:
        return empty_automaton()
    if live == ba.states:
        return ba
    return _restrict(ba, live)


def merge_duplicate_transitions(ba: BuchiAutomaton) -> BuchiAutomaton:
    """Collapse transitions with identical (src, label, dst)."""
    unique = {(t.src, t.label, t.dst) for t in ba.transitions()}
    if len(unique) == ba.num_transitions:
        return ba
    return BuchiAutomaton(
        ba.states,
        ba.initial,
        [Transition(src, label, dst) for src, label, dst in unique],
        ba.final,
    )


def reduce_automaton(ba: BuchiAutomaton) -> BuchiAutomaton:
    """Full reduction pipeline: trim, merge duplicates, quotient.

    The quotient step can create new unreachable/dead opportunities only
    in degenerate cases, so one pass of each is sufficient in practice;
    we run trim → quotient → trim for good measure (all passes are cheap
    relative to translation).
    """
    ba = remove_unreachable(ba)
    ba = remove_dead(ba)
    if ba.num_states <= 1 and ba.num_transitions == 0:
        return ba
    ba = merge_duplicate_transitions(ba)
    ba = quotient_by_bisimulation(ba)
    ba = remove_unreachable(ba)
    return ba


def _restrict(ba: BuchiAutomaton, keep: set) -> BuchiAutomaton:
    return BuchiAutomaton(
        keep,
        ba.initial,
        [t for t in ba.transitions() if t.src in keep and t.dst in keep],
        ba.final & keep,
    )
