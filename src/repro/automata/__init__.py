"""Büchi automata: labels, data structure, LTL translation, reduction.

The data model of the broker (§2.3): contracts and queries are stored and
checked as Büchi automata whose transition labels are conjunctions of
event literals.

Typical use::

    from repro.automata import translate
    from repro.ltl import parse

    ba = translate(parse("G(dateChange -> !F refund)"))
    ba.accepts(run)
"""

from .bisim import (
    bisimulation_partition,
    blocks_of,
    partition_signature,
    quotient,
    quotient_by_bisimulation,
)
from .buchi import BuchiAutomaton, BuchiBuilder, Transition
from .encode import EncodedAutomaton, QueryBinding, bind_query, encode_automaton
from .gba import GeneralizedBuchi
from .hoa import from_hoa, to_hoa
from .labels import (
    TRUE_LABEL,
    Label,
    Literal,
    compatible,
    label_from_formula,
    label_to_formula,
    neg,
    pos,
)
from .language import enumerate_runs, example_behaviors
from .ltl2ba import DEFAULT_STATE_BUDGET, translate, translate_text
from .product import intersection, union
from .reduce import (
    empty_automaton,
    merge_duplicate_transitions,
    reduce_automaton,
    remove_dead,
    remove_unreachable,
)
from .simulation import (
    direct_simulation,
    prune_dominated_transitions,
    quotient_by_simulation,
    reduce_with_simulation,
)
from .serialize import (
    automaton_from_dict,
    automaton_to_dict,
    dumps,
    load,
    load_many,
    loads,
    save,
    save_many,
    to_dot,
)

__all__ = [
    "BuchiAutomaton",
    "BuchiBuilder",
    "Transition",
    "EncodedAutomaton",
    "QueryBinding",
    "bind_query",
    "encode_automaton",
    "GeneralizedBuchi",
    "from_hoa",
    "to_hoa",
    "TRUE_LABEL",
    "Label",
    "Literal",
    "compatible",
    "label_from_formula",
    "label_to_formula",
    "neg",
    "pos",
    "DEFAULT_STATE_BUDGET",
    "translate",
    "translate_text",
    "enumerate_runs",
    "example_behaviors",
    "intersection",
    "union",
    "empty_automaton",
    "merge_duplicate_transitions",
    "reduce_automaton",
    "remove_dead",
    "remove_unreachable",
    "bisimulation_partition",
    "blocks_of",
    "partition_signature",
    "quotient",
    "quotient_by_bisimulation",
    "automaton_from_dict",
    "automaton_to_dict",
    "dumps",
    "load",
    "load_many",
    "loads",
    "save",
    "save_many",
    "to_dot",
    "direct_simulation",
    "prune_dominated_transitions",
    "quotient_by_simulation",
    "reduce_with_simulation",
]
