"""Text serialization of Büchi automata.

The paper's prototype pipeline (§7.1) exchanges contract databases
between its four modules as text files; we do the same with a JSON
document per automaton (or per list of automata).  States are
canonicalized to dense integers on save, so files are deterministic and
diff-friendly.

Format (one automaton)::

    {
      "states": 4,
      "initial": 0,
      "final": [2],
      "transitions": [[0, "purchase", 1], [1, "true", 1], ...]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from ..errors import AutomatonError
from .buchi import BuchiAutomaton, Transition
from .labels import Label


def automaton_to_dict(ba: BuchiAutomaton, *, canonicalize: bool = True) -> dict:
    """A JSON-ready dictionary for ``ba`` (canonically renumbered).

    ``canonicalize=False`` serializes the automaton's states as they are
    (they must already be dense integers) — the persistence layer uses
    this to keep a precomputed :meth:`~BuchiAutomaton.canonical_numbering`
    in sync with the stored document.
    """
    canonical = ba.canonical() if canonicalize else ba
    transitions = sorted(
        ((t.src, str(t.label), t.dst) for t in canonical.transitions()),
        key=lambda item: (item[0], item[1], item[2]),
    )
    return {
        "states": canonical.num_states,
        "initial": canonical.initial,
        "final": sorted(canonical.final),
        "transitions": [list(t) for t in transitions],
    }


def automaton_from_dict(data: dict) -> BuchiAutomaton:
    """Inverse of :func:`automaton_to_dict`."""
    try:
        n = int(data["states"])
        initial = int(data["initial"])
        final = [int(s) for s in data["final"]]
        raw = data["transitions"]
    except (KeyError, TypeError, ValueError) as exc:
        raise AutomatonError(f"malformed automaton document: {exc}") from exc
    transitions = []
    for entry in raw:
        src, label_text, dst = entry
        transitions.append(Transition(int(src), Label.parse(label_text), int(dst)))
    return BuchiAutomaton(range(n), initial, transitions, final)


def dumps(ba: BuchiAutomaton) -> str:
    """Serialize one automaton to a JSON string."""
    return json.dumps(automaton_to_dict(ba), indent=2, sort_keys=True)


def loads(text: str) -> BuchiAutomaton:
    """Parse one automaton from a JSON string."""
    return automaton_from_dict(json.loads(text))


def save(ba: BuchiAutomaton, path: str | Path) -> None:
    """Write one automaton to ``path``."""
    Path(path).write_text(dumps(ba) + "\n", encoding="utf-8")


def load(path: str | Path) -> BuchiAutomaton:
    """Read one automaton from ``path``."""
    return loads(Path(path).read_text(encoding="utf-8"))


def to_dot(ba: BuchiAutomaton, name: str = "buchi") -> str:
    """Render the automaton in Graphviz DOT, in the visual style of the
    paper's figures: double circles for final states, an entry arrow for
    the initial state, labels on the edges.

    >>> print(to_dot(translate(parse("F p"))))   # doctest: +SKIP
    """
    canonical = ba.canonical()
    lines = [
        f"digraph {name} {{",
        "  rankdir=LR;",
        '  __start [shape=point, label=""];',
    ]
    for state in sorted(canonical.states):
        shape = "doublecircle" if state in canonical.final else "circle"
        lines.append(f"  s{state} [shape={shape}, label=\"{state}\"];")
    lines.append(f"  __start -> s{canonical.initial};")
    for t in sorted(
        canonical.transitions(), key=lambda t: (t.src, str(t.label), t.dst)
    ):
        label = str(t.label).replace('"', '\\"')
        lines.append(f'  s{t.src} -> s{t.dst} [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def save_many(automata: Iterable[BuchiAutomaton], path: str | Path) -> None:
    """Write a list of automata (a contract database dump) to ``path``."""
    docs = [automaton_to_dict(ba) for ba in automata]
    Path(path).write_text(
        json.dumps(docs, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def load_many(path: str | Path) -> list[BuchiAutomaton]:
    """Read a list of automata from ``path``."""
    docs = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(docs, list):
        raise AutomatonError("expected a JSON list of automata")
    return [automaton_from_dict(doc) for doc in docs]
