"""repro — a full reproduction of *"Querying contract databases based on
temporal behavior"* (Damaggio, Deutsch, Zhou; SIGMOD 2011).

The library implements a contract broker in which service contracts are
both specified and queried through their temporal behavior, expressed as
declarative LTL clauses over a common event vocabulary:

* :mod:`repro.ltl` — LTL ASTs, parser, semantics, Dwyer pattern library;
* :mod:`repro.automata` — Büchi automata and an LTL2BA-style translator;
* :mod:`repro.core` — the permission semantics and Algorithm 2;
* :mod:`repro.index` — the prefiltering index (§4);
* :mod:`repro.projection` — the bisimulation optimization (§5);
* :mod:`repro.broker` — the end-to-end contract database;
* :mod:`repro.stream` — fleet-scale streaming monitoring over encoded
  frontiers, with watch queries and alerts;
* :mod:`repro.dist` — sharded serving: jump-consistent-hash placement,
  a fan-out/merge coordinator, and journal-shipping read replicas;
* :mod:`repro.workload` — the synthetic workload generator (§7.2);
* :mod:`repro.bench` — the harness regenerating the paper's tables and
  figures.

Thirty-second tour::

    from repro import ContractDatabase

    db = ContractDatabase()
    db.register("Ticket A", [
        "G(dateChange -> !F refund)",       # no refund after a change
    ])
    outcome = db.query("F(missedFlight && F(refund || dateChange))")
    print(outcome.contract_names)

Every query accepts a :class:`QueryOptions` with execution budgets
(``deadline_seconds`` / ``step_budget``) for bounded-latency serving —
see :mod:`repro.broker.options`.
"""

from .broker import (
    AttributeFilter,
    BrokerConfig,
    Contract,
    ContractDatabase,
    ContractSpec,
    Degradation,
    QueryOptions,
    QueryOutcome,
    QueryResult,
    QuerySpec,
    RegistrationReport,
    Verdict,
    open_database,
    register_many,
)
from .core import Deadline, ExecutionBudget, StepBudget, find_witness, permits
from .dist import DistributedDatabase, LocalCluster, Replica
from .errors import ReproError
from .ltl import Formula, Run, parse, satisfies
from .stream import Alert, FleetMonitor, MonitorOptions, MonitorStatus

__version__ = "1.10.0"

__all__ = [
    "AttributeFilter",
    "BrokerConfig",
    "Contract",
    "ContractDatabase",
    "ContractSpec",
    "Deadline",
    "Degradation",
    "ExecutionBudget",
    "QueryOptions",
    "QueryOutcome",
    "QueryResult",
    "QuerySpec",
    "RegistrationReport",
    "StepBudget",
    "Verdict",
    "open_database",
    "register_many",
    "find_witness",
    "permits",
    "ReproError",
    "Formula",
    "Run",
    "parse",
    "satisfies",
    "Alert",
    "FleetMonitor",
    "MonitorOptions",
    "MonitorStatus",
    "DistributedDatabase",
    "LocalCluster",
    "Replica",
    "__version__",
]
