"""Quickstart: the paper's running example in thirty lines of API.

Registers the three airfare contracts of Example 2 (Tickets A, B, C) and
asks the intro's question: *which fares allow a partial refund or a date
change after the first flight leg has been missed?*

Run with::

    python examples/quickstart.py
"""

from repro import ContractDatabase, QueryOptions

db = ContractDatabase()

# Common airfare axioms (Example 5, C0-C5): one event per instant, the
# ticket is purchased once and before anything else, a refund or use ends
# the contract, a missed flight blocks use until a reschedule.
COMMON = [
    "G(purchase -> !use && !missedFlight && !refund && !dateChange)",
    "G(use -> !purchase && !missedFlight && !refund && !dateChange)",
    "G(missedFlight -> !purchase && !use && !refund && !dateChange)",
    "G(refund -> !purchase && !use && !missedFlight && !dateChange)",
    "G(dateChange -> !purchase && !use && !missedFlight && !refund)",
    "G(purchase -> X(!F purchase))",
    "purchase B (use || missedFlight || refund || dateChange)",
    "G((missedFlight -> !F use) W dateChange)",
    "G(refund -> X G(!purchase && !use && !missedFlight && !refund && !dateChange))",
    "G(use -> X G(!purchase && !use && !missedFlight && !refund && !dateChange))",
]

db.register("Ticket A", COMMON + [
    "G(dateChange -> !F refund)",       # no refunds after a date change
], attributes={"price": 980})

db.register("Ticket B", COMMON + [
    "G(missedFlight -> !F dateChange)", # changes only before departure
], attributes={"price": 640})

db.register("Ticket C", COMMON + [
    "G(!refund)",                        # no refunds at all
    "G(dateChange -> X(!F dateChange))", # at most one date change
    "G(missedFlight -> !F dateChange)",  # changes only before departure
], attributes={"price": 310})

QUERY = "F(missedFlight && F(refund || dateChange))"

result = db.query(QUERY)
print(f"query: {QUERY}")
print(f"permitting fares: {list(result.contract_names)}")
print(f"(checked {result.stats.checked} of {result.stats.database_size} "
      f"contracts after prefiltering)")

# Why was Ticket A returned?  Ask for a witness: a concrete sequence of
# events the contract allows that satisfies the query.
witness = db.query(QUERY, QueryOptions(
    contract_ids=(0,), explain=True,
    use_prefilter=False, use_projections=False,
)).witnesses[0]
print("\nwitness sequence for Ticket A:")
for t, snapshot in enumerate(witness.to_run().unroll(6)):
    events = ", ".join(sorted(snapshot)) or "(nothing)"
    print(f"  t={t}: {events}")

assert list(result.contract_names) == ["Ticket A", "Ticket B"]
print("\nTicket C is correctly excluded: it allows neither refunds nor "
      "post-miss date changes.")
