"""A fuller airfare broker: relational pre-selection + temporal queries.

Models the complete workflow of the paper's introduction: a customer
searches 'San Diego → New York on 10/19/2010, under $800' (handled by
the relational substrate) *and* demands a temporal property of the fare
contract (handled by the permission machinery).  Also demonstrates
per-query optimization toggles and the reported statistics.

Run with::

    python examples/airfare_broker.py
"""

from repro.broker import AttributeFilter, ContractDatabase, QueryOptions, eq, le
from repro.workload.airfare import QUERIES, all_ticket_specs

db = ContractDatabase()
for spec in all_ticket_specs():
    contract = db.register(spec)
    print(f"registered {contract} at ${contract.attributes['price']}")

# A fare on a different route: relationally filtered out regardless of
# its (very permissive) temporal behavior.
db.register(
    "Ticket D (LAX route)",
    ["G(missedFlight -> F dateChange)", "F refund"],
    attributes={
        "airline": "United", "cabin": "economy",
        "origin": "LAX", "destination": "JFK",
        "date": "2010-10-19", "price": 200,
    },
)

print("\n--- customer 1: flexible traveller, SAN -> JFK, under $800 ---")
search = AttributeFilter.where(
    eq("origin", "SAN"), eq("destination", "JFK"), le("price", 800)
)
temporal = QUERIES["refund_or_change_after_miss"]["ltl"]
result = db.query(temporal, QueryOptions(attribute_filter=search))
print(f"relational matches : {result.stats.relational_matches}")
print(f"temporal matches   : {list(result.contract_names)}")
cheapest = min(
    (db.get(cid) for cid in result.contract_ids),
    key=lambda c: c.attributes["price"],
)
print(f"recommendation     : {cheapest.name} "
      f"(${cheapest.attributes['price']})")

print("\n--- customer 2: wants unlimited rebooking, any price ---")
result = db.query(
    "F(dateChange && X F dateChange)",
    QueryOptions(attribute_filter=AttributeFilter.where(
        eq("origin", "SAN"), eq("destination", "JFK"))),
)
print(f"fares allowing two date changes: {list(result.contract_names)}")

print("\n--- the same query, optimized vs. unoptimized ---")
for optimized in (False, True):
    result = db.query(temporal, QueryOptions(
        attribute_filter=search,
        use_prefilter=optimized, use_projections=optimized,
    ))
    mode = "optimized  " if optimized else "unoptimized"
    s = result.stats
    print(f"{mode}: {s.total_seconds * 1000:6.1f} ms "
          f"(candidates={s.candidates}, checked={s.checked}, "
          f"pruned={s.pruning_ratio:.0%})")

print("\n--- why is Ticket B returned? ---")
ticket_b = next(c for c in db.contracts() if c.name == "Ticket B")
witness = db.query(temporal, QueryOptions(
    contract_ids=(ticket_b.contract_id,), explain=True,
    use_prefilter=False, use_projections=False,
)).witnesses[ticket_b.contract_id]
print("allowed sequence satisfying the query:")
for t, snapshot in enumerate(witness.to_run().unroll(5)):
    print(f"  t={t}: {', '.join(sorted(snapshot)) or '(nothing)'}")
