"""A multi-domain contract marketplace: corpus + analytics tour.

Loads the curated corpus (warranties, SaaS SLAs, gym memberships,
ticket resale), answers every domain's customer questions, and then
goes beyond point queries: pairwise behavioral comparison of competing
contracts, with concrete witness sequences for every difference found.

Run with::

    python examples/contract_market.py
"""

from itertools import combinations

from repro.broker import ContractDatabase, compare
from repro.workload.corpus import all_domains

for domain in all_domains():
    print(f"\n{'=' * 66}\nmarket: {domain.name}  "
          f"({len(domain.contracts)} competing contracts, "
          f"{len(domain.vocabulary)} events)\n{'=' * 66}")

    db = ContractDatabase(vocabulary=domain.vocabulary)
    for spec in domain.contracts:
        contract = db.register(spec)
        clause_count = len(spec.clauses)
        print(f"  registered {contract.name:18s} "
              f"({clause_count} clauses, {contract.ba.num_states} states)")

    print("\n  customer questions:")
    for question, (ltl, expected) in domain.questions.items():
        result = db.query(ltl)
        names = sorted(result.contract_names)
        assert set(names) == set(expected), (domain.name, question)
        print(f"   Q: {question}")
        print(f"      -> {', '.join(names) or '(no contract)'}")

    print("\n  behavioral differences (witnesses are allowed sequences):")
    contracts = sorted(db.contracts(), key=lambda c: c.name)
    for left, right in combinations(contracts, 2):
        verdict = compare(left, right, limit=40)
        line = f"   {left.name} vs {right.name}: {verdict.relation.value}"
        print(line)
        if verdict.left_only is not None:
            print(f"      only {left.name} allows : {verdict.left_only}")
        if verdict.right_only is not None:
            print(f"      only {right.name} allows: {verdict.right_only}")

print("\nmarket report complete.")
