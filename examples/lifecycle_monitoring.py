"""Live contract monitoring: following a ticket through its lifecycle.

Beyond search-time querying, the broker's automata make it trivial to
*monitor* a signed contract as real events unfold (the runtime-
monitoring use case of the paper's related work, §8): after each event
the customer-service system can ask "is the contract still being
honored?" and "which options remain open from here?".

Run with::

    python examples/lifecycle_monitoring.py
"""

from repro.automata.language import example_behaviors
from repro.broker import ContractDatabase, ContractMonitor, MonitorStatus
from repro.workload.airfare import all_ticket_specs

db = ContractDatabase()
for spec in all_ticket_specs():
    db.register(spec)

ticket_a = next(c for c in db.contracts() if c.name == "Ticket A")

print("=== some sequences Ticket A allows (enumerated from its BA) ===")
for behavior in example_behaviors(ticket_a.ba, limit=4, horizon=4):
    rendered = " -> ".join(
        "{" + ",".join(sorted(snap)) + "}" if snap else "{}"
        for snap in behavior
    )
    print(f"  {rendered} ...")

print("\n=== monitoring a customer's actual trip ===")
monitor = ContractMonitor.for_contract(ticket_a)

TIMELINE = [
    ({"purchase"}, "customer buys the ticket"),
    ({"missedFlight"}, "customer misses the flight"),
    ({"dateChange"}, "airline reschedules"),
]
for snapshot, description in TIMELINE:
    status = monitor.advance(snapshot)
    refundable = monitor.can_still("F refund")
    usable = monitor.can_still("F use")
    print(f"{description:35s} -> {status.value:8s} "
          f"refundable={refundable!s:5s} usable={usable!s:5s}")

# Ticket A forbids refunds after a date change: the monitor knows.
assert not monitor.can_still("F refund")

# Monitoring also surfaces specification subtleties.  Example 5's C3
# clause, G((missedFlight -> !F use) W dateChange), reads "a missed
# flight makes the ticket unusable unless rescheduled" — but as written,
# the !F use obligation taken at the miss instant scopes over the WHOLE
# future, so even a later reschedule cannot restore usability.  A
# contract author replaying scenarios against the monitor catches this
# before publishing:
assert not monitor.can_still("F use")
print("\nNote: after the missed flight, C3 as formalized in Example 5 "
      "rules out any future 'use' — even after the reschedule. The "
      "monitor makes such specification subtleties visible.")

print("\n=== a violating history is caught immediately ===")
ticket_c = next(c for c in db.contracts() if c.name == "Ticket C")
monitor_c = ContractMonitor.for_contract(ticket_c)
monitor_c.advance({"purchase"})
status = monitor_c.advance({"refund"})      # Ticket C never refunds
print(f"Ticket C after a refund event: {status.value}")
assert status == MonitorStatus.VIOLATED

print("\nThe same permission semantics as the broker applies to futures: "
      "asking Ticket A's monitor about class upgrades "
      f"-> {monitor.can_still('F classUpgrade')} (event not in the "
      "contract vocabulary).")

print("\n=== the whole fleet on one event bus (encoded engine) ===")
# At fleet scale the broker streams events through encoded bitset
# frontiers instead of per-contract object walks: db.monitor_fleet()
# reuses the registration-time encodings, watch queries compile to one
# precomputed mask each, and alerts fire exactly on verdict flips.
fleet = db.monitor_fleet(watches={"refundable": "F refund"})
report = fleet.ingest([
    {"events": ["purchase"]},                            # broadcast
    {"contract": "Ticket A", "events": ["dateChange"]},  # addressed
    {"events": ["refund"]},                              # broadcast
])
print(f"{report.events} events, {report.deliveries} deliveries, "
      f"{len(report.alerts)} alert(s):")
for alert in report.alerts:
    print(f"  {alert.describe()}")
print("still active:", ", ".join(fleet.active_contracts) or "(none)")
