"""Synthetic-workload exploration: the §7 experiments in miniature.

Generates a small contract database and query workload with the Dwyer
pattern generator (§7.2), then shows what each optimization contributes:
index pruning rates, projection sizes, and scan-versus-optimized timing.

Run with::

    python examples/synthetic_workload.py
"""

import statistics

from repro.bench.harness import build_database, specs_to_formulas
from repro.bench.reporting import format_table
from repro.broker.database import BrokerConfig
from repro.broker.options import QueryOptions
from repro.workload.generator import WorkloadGenerator

NUM_CONTRACTS = 60
CONTRACT_PATTERNS = 3
NUM_QUERIES = 10
VOCABULARY = 10

print(f"generating {NUM_CONTRACTS} contracts "
      f"({CONTRACT_PATTERNS} clauses each) over {VOCABULARY} events ...")
generator = WorkloadGenerator(vocabulary_size=VOCABULARY, seed=42)
contracts = generator.generate_specs(NUM_CONTRACTS, CONTRACT_PATTERNS)
queries = specs_to_formulas(generator.generate_specs(NUM_QUERIES, 1))

db = build_database(contracts, BrokerConfig())
stats = db.database_stats()
print(f"database: {stats['contracts']} contracts, "
      f"avg {stats['states_avg']:.1f} states / "
      f"{stats['transitions_avg']:.1f} transitions per BA, "
      f"{stats['index_nodes']} index nodes")

reg = db.registration_stats
print(f"registration: translate {reg.translation_seconds:.2f}s, "
      f"index {reg.prefilter_seconds:.2f}s, "
      f"projections {reg.projection_seconds:.2f}s")

# Warm the lazily materialized projection quotients first: the paper
# precomputes its simplified BAs at registration time, so steady-state
# is the comparable regime.
for query in queries:
    db.query(query)

rows = []
speedups = []
for i, query in enumerate(queries):
    scan = db.query(
        query, QueryOptions(use_prefilter=False, use_projections=False)
    )
    fast = db.query(
        query, QueryOptions(use_prefilter=True, use_projections=True)
    )
    assert scan.contract_ids == fast.contract_ids
    speedup = max(scan.stats.total_seconds, 1e-9) / max(
        fast.stats.total_seconds, 1e-9
    )
    speedups.append(speedup)
    rows.append((
        f"q{i}",
        len(fast.contract_ids),
        fast.stats.candidates,
        f"{fast.stats.pruning_ratio:.0%}",
        round(scan.stats.total_seconds * 1000, 1),
        round(fast.stats.total_seconds * 1000, 1),
        round(speedup, 1),
    ))

print()
print(format_table(
    ["query", "matches", "candidates", "pruned", "scan ms",
     "optimized ms", "speedup"],
    rows,
    title="scan vs. optimized evaluation",
))
print(f"\naverage speedup: {statistics.mean(speedups):.1f}x "
      f"(the paper reports growing speedups as databases get larger)")

# How much do the precomputed projections shrink the checked automata?
sample = next(db.contracts())
store = sample.projections
print(f"\nprojection store of '{sample.name}': "
      f"{store.num_subsets} literal subsets -> "
      f"{store.num_distinct_partitions} distinct partitions "
      f"({store.num_distinct_partitions / store.num_subsets:.0%}; "
      f"the paper observed ~5% on its larger contracts)")
