"""Insurance-policy brokering: a second contract domain.

The paper argues the approach generalizes "beyond web services and
software, e.g. airline tickets and insurance policies" (§1).  This
example models home-insurance policies whose fine print differs in how
claims, premium increases, cancellations and renewals interact over
time, and answers customer questions no attribute schema could encode:

* "Can I file a second claim without the insurer cancelling me?"
* "Can the premium rise even if I never file a claim?"
* "After a cancellation, can I ever be reinstated?"

Run with::

    python examples/insurance_policies.py
"""

from repro.broker import AttributeFilter, ContractDatabase, QueryOptions, le

# Event vocabulary shared by all insurance contracts.
#   claim          - the customer files a claim
#   payout         - the insurer pays a claim
#   premiumIncrease- the insurer raises the premium
#   cancel         - the insurer cancels the policy
#   renew          - the policy is renewed for another term
#   reinstate      - a cancelled policy is reinstated

COMMON = [
    # a payout only ever follows a claim (p B q: every q is preceded by p)
    "claim B payout",
    # cancellation is terminal unless explicitly reinstated
    "G(cancel -> ((!claim && !payout && !renew) W reinstate))",
]

db = ContractDatabase()

db.register("BudgetShield Basic", COMMON + [
    # one claim per policy lifetime; a claim triggers a premium increase
    # and forfeits renewal
    "G(claim -> X(!F claim))",
    "G(claim -> F premiumIncrease)",
    "G(claim -> !F renew)",
    # the insurer may cancel at any time and never reinstates
    "G(!reinstate)",
], attributes={"premium": 40, "coverage": 100_000})

db.register("HomeSafe Standard", COMMON + [
    # at most two claims: after a claim, any further claim is the last
    "G(claim -> X G(claim -> X(!F claim)))",
    # premiums never rise without a preceding claim
    "claim B premiumIncrease",
    # cancellation only after a claim; reinstatement possible
    "claim B cancel",
], attributes={"premium": 75, "coverage": 250_000})

db.register("Platinum Umbrella", COMMON + [
    # unlimited claims, but every claim is eventually paid out
    "G(claim -> F payout)",
    # the insurer never cancels
    "G(!cancel)",
    # premiums never increase
    "G(!premiumIncrease)",
], attributes={"premium": 190, "coverage": 1_000_000})


def ask(question: str, ltl: str, attribute_filter=None):
    result = db.query(ltl, QueryOptions(
        attribute_filter=attribute_filter or AttributeFilter()
    ))
    print(f"\n{question}")
    print(f"  LTL    : {ltl}")
    print(f"  matches: {list(result.contract_names) or '(none)'}")
    return set(result.contract_names)


print(f"registered {len(db)} insurance policies")

two_claims = ask(
    "Which policies let me file two claims (no cancellation in between)?",
    "F(claim && X F claim)",
)
assert two_claims == {"HomeSafe Standard", "Platinum Umbrella"}

silent_increase = ask(
    "Under which policies can my premium rise although I never claim?",
    "G(!claim) && F premiumIncrease",
)
assert silent_increase == {"BudgetShield Basic"}

reinstatement = ask(
    "Where can a cancelled policy come back to life?",
    "F(cancel && F reinstate)",
)
assert reinstatement == {"HomeSafe Standard"}

guaranteed_payout = ask(
    "Affordable policies (premium <= 100) where a claim can be followed "
    "by a payout and a renewal?",
    "F(claim && F(payout && F renew))",
    AttributeFilter.where(le("premium", 100)),
)
assert guaranteed_payout == {"HomeSafe Standard"}

print("\nNote how BudgetShield never matches claim-heavy questions: its "
      "one-claim clause and the underspecified 'reinstate' event exclude "
      "it exactly as Definition 1 prescribes.")
